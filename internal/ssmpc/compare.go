package ssmpc

import (
	"fmt"
	"math/big"

	"groupranking/internal/fixedbig"
)

// BitLTPublicBatch computes shares of the bits [c_k < r_k] for a batch of
// instances: each c_k is public and each r_k is given by shared bits (all
// little-endian, same width). It is the bitwise less-than circuit at the
// heart of the statistically masked comparison: locate the most
// significant differing bit with a prefix-OR and return r's bit there.
// The prefix-OR is sequential in the bit index but batched across
// instances, so a batch of any size costs the same m rounds.
func (e *Engine) BitLTPublicBatch(cBitsList [][]uint8, rBitsList [][]Share) ([]Share, error) {
	k := len(cBitsList)
	if k != len(rBitsList) {
		return nil, fmt.Errorf("ssmpc: BitLT batch size mismatch %d vs %d", k, len(rBitsList))
	}
	if k == 0 {
		return nil, nil
	}
	m := len(rBitsList[0])
	if m == 0 {
		return nil, fmt.Errorf("ssmpc: BitLT on empty inputs")
	}
	// d[k][i] = c_i XOR r_i, local because c is public.
	d := make([][]Share, k)
	for j := 0; j < k; j++ {
		if len(cBitsList[j]) != m || len(rBitsList[j]) != m {
			return nil, fmt.Errorf("ssmpc: BitLT width mismatch in instance %d", j)
		}
		d[j] = make([]Share, m)
		for i := 0; i < m; i++ {
			if cBitsList[j][i] == 0 {
				d[j][i] = rBitsList[j][i]
			} else {
				d[j][i] = e.Sub(e.ConstShare(big.NewInt(1)), rBitsList[j][i])
			}
		}
	}
	// Prefix OR from the most significant bit: f_i = OR(d_{m-1} .. d_i).
	// One MulBatch per bit position, all instances in parallel.
	f := make([][]Share, k)
	for j := range f {
		f[j] = make([]Share, m)
		f[j][m-1] = d[j][m-1]
	}
	for i := m - 2; i >= 0; i-- {
		as := make([]Share, k)
		bs := make([]Share, k)
		for j := 0; j < k; j++ {
			as[j] = f[j][i+1]
			bs[j] = d[j][i]
		}
		prods, err := e.MulBatch(as, bs)
		if err != nil {
			return nil, err
		}
		for j := 0; j < k; j++ {
			f[j][i] = e.Sub(e.Add(f[j][i+1], d[j][i]), prods[j])
		}
	}
	// ind_i = f_i − f_{i+1} marks the most significant differing bit;
	// [c < r] = Σ ind_i · r_i (r holds the 1 at the deciding position).
	flatInd := make([]Share, 0, k*m)
	flatR := make([]Share, 0, k*m)
	for j := 0; j < k; j++ {
		for i := 0; i < m; i++ {
			var ind Share
			if i == m-1 {
				ind = f[j][m-1]
			} else {
				ind = e.Sub(f[j][i], f[j][i+1])
			}
			flatInd = append(flatInd, ind)
			flatR = append(flatR, rBitsList[j][i])
		}
	}
	prods, err := e.MulBatch(flatInd, flatR)
	if err != nil {
		return nil, err
	}
	out := make([]Share, k)
	for j := 0; j < k; j++ {
		acc := e.ConstShare(big.NewInt(0))
		for i := 0; i < m; i++ {
			acc = e.Add(acc, prods[j*m+i])
		}
		out[j] = acc
	}
	return out, nil
}

// BitLTPublic is the single-instance form of BitLTPublicBatch.
func (e *Engine) BitLTPublic(cBits []uint8, rBits []Share) (Share, error) {
	out, err := e.BitLTPublicBatch([][]uint8{cBits}, [][]Share{rBits})
	if err != nil {
		return Share{}, err
	}
	return out[0], nil
}

// Mod2mBatch computes shares of x_k mod 2^m for shared values known to
// lie in [0, 2^lPrime). It is the statistically masked truncation
// protocol: open y = x + r' + 2^m·r” for jointly random bit-composed
// masks, reduce the public y, and correct the underflow with the bitwise
// less-than circuit. The field prime must exceed 2^(lPrime+Kappa+2) so
// the opened values never wrap modulo p.
func (e *Engine) Mod2mBatch(xs []Share, lPrime, m int) ([]Share, error) {
	k := len(xs)
	if k == 0 {
		return nil, nil
	}
	if m <= 0 || lPrime < m {
		return nil, fmt.Errorf("ssmpc: Mod2m invalid widths l'=%d m=%d", lPrime, m)
	}
	if e.cfg.P.BitLen() < lPrime+e.cfg.Kappa+3 {
		return nil, fmt.Errorf("ssmpc: field too small for Mod2m (need > %d bits, have %d)",
			lPrime+e.cfg.Kappa+2, e.cfg.P.BitLen())
	}
	// Low mask r' from m shared bits and high mask r'' from
	// kappa+lPrime−m shared bits, for every instance, in one batch.
	highBits := e.cfg.Kappa + lPrime - m
	per := m + highBits
	allBits, err := e.RandomBits(k * per)
	if err != nil {
		return nil, err
	}
	rLowBits := make([][]Share, k)
	ySh := make([]Share, k)
	rLow := make([]Share, k)
	for j := 0; j < k; j++ {
		bits := allBits[j*per : (j+1)*per]
		rLowBits[j] = bits[:m]
		rl := e.ConstShare(big.NewInt(0))
		for i, b := range bits[:m] {
			rl = e.Add(rl, e.Scale(b, pow2(i)))
		}
		rLow[j] = rl
		rh := e.ConstShare(big.NewInt(0))
		for i, b := range bits[m:] {
			rh = e.Add(rh, e.Scale(b, pow2(i)))
		}
		// y = x + r' + 2^m·r''.
		ySh[j] = e.Add(xs[j], e.Add(rl, e.Scale(rh, pow2(m))))
	}
	ys, err := e.OpenBatch(ySh)
	if err != nil {
		return nil, err
	}
	mask := new(big.Int).Sub(pow2(m), big.NewInt(1))
	yLows := make([]*big.Int, k)
	cBitsList := make([][]uint8, k)
	for j := 0; j < k; j++ {
		yLows[j] = new(big.Int).And(ys[j], mask)
		if cBitsList[j], err = fixedbig.Bits(yLows[j], m); err != nil {
			return nil, err
		}
	}
	us, err := e.BitLTPublicBatch(cBitsList, rLowBits)
	if err != nil {
		return nil, err
	}
	// x mod 2^m = y' − r' + 2^m·[y' < r'].
	out := make([]Share, k)
	for j := 0; j < k; j++ {
		res := e.Sub(e.ConstShare(yLows[j]), rLow[j])
		out[j] = e.Add(res, e.Scale(us[j], pow2(m)))
	}
	return out, nil
}

// Mod2m is the single-instance form of Mod2mBatch.
func (e *Engine) Mod2m(x Share, lPrime, m int) (Share, error) {
	out, err := e.Mod2mBatch([]Share{x}, lPrime, m)
	if err != nil {
		return Share{}, err
	}
	return out[0], nil
}

// GTEBatch computes shares of the bits [a_k ≥ b_k] for shared l-bit
// values: c = a − b + 2^l lies in (0, 2^(l+1)) and its l-th bit is the
// answer, extracted with Mod2mBatch. The whole batch costs the same
// number of rounds as a single comparison, which is what makes the
// layer-parallel sorting network of the baseline meaningful.
func (e *Engine) GTEBatch(as, bs []Share, l int) ([]Share, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("ssmpc: GTE batch size mismatch %d vs %d", len(as), len(bs))
	}
	if l <= 0 {
		return nil, fmt.Errorf("ssmpc: GTE needs positive width, got %d", l)
	}
	k := len(as)
	if k == 0 {
		return nil, nil
	}
	cs := make([]Share, k)
	for j := 0; j < k; j++ {
		cs[j] = e.AddConst(e.Sub(as[j], bs[j]), pow2(l))
	}
	lows, err := e.Mod2mBatch(cs, l+1, l)
	if err != nil {
		return nil, err
	}
	inv := new(big.Int).ModInverse(pow2(l), e.cfg.P)
	out := make([]Share, k)
	for j := 0; j < k; j++ {
		// bit = (c − (c mod 2^l)) / 2^l.
		out[j] = e.Scale(e.Sub(cs[j], lows[j]), inv)
	}
	return out, nil
}

// GTE computes a share of the bit [a ≥ b] for shared l-bit values.
func (e *Engine) GTE(a, b Share, l int) (Share, error) {
	out, err := e.GTEBatch([]Share{a}, []Share{b}, l)
	if err != nil {
		return Share{}, err
	}
	return out[0], nil
}

// LT computes a share of [a < b] for shared l-bit values.
func (e *Engine) LT(a, b Share, l int) (Share, error) {
	gte, err := e.GTE(a, b, l)
	if err != nil {
		return Share{}, err
	}
	return e.Sub(e.ConstShare(big.NewInt(1)), gte), nil
}

func pow2(k int) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(k))
}
