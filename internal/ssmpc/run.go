package ssmpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"groupranking/internal/fixedbig"
	"groupranking/internal/shamir"
	"groupranking/internal/transport"
)

// splitSecret shares a value with this engine's parameters and returns
// the per-party y-values.
func splitSecret(e *Engine, s *big.Int) ([]*big.Int, error) {
	shares, err := shamir.Split(s, e.cfg.Degree, e.cfg.N, e.cfg.P, e.rng)
	if err != nil {
		return nil, err
	}
	ys := make([]*big.Int, len(shares))
	for i, sh := range shares {
		ys[i] = sh.Y
	}
	return ys, nil
}

// Result carries one party's program output.
type Result[T any] struct {
	Party    int
	Value    T
	Counters Counters
}

// RunProgram executes the same SPMD program on all cfg.N parties, one
// goroutine per party, over a fresh in-memory fabric. It returns the
// per-party results (indexed by party), the fabric (for stats and trace),
// and the first error any party hit. Each party gets an independent
// deterministic DRBG derived from seed; pass distinct seeds for
// statistically independent runs, or use RunProgramRand for crypto/rand.
func RunProgram[T any](cfg Config, seed string, opts []transport.Option, prog func(e *Engine) (T, error)) ([]Result[T], *transport.Fabric, error) {
	rngs := make([]io.Reader, cfg.N)
	for i := range rngs {
		rngs[i] = fixedbig.NewDRBG(fmt.Sprintf("%s-party-%d", seed, i))
	}
	return runWith(cfg, rngs, opts, prog)
}

func runWith[T any](cfg Config, rngs []io.Reader, opts []transport.Option, prog func(e *Engine) (T, error)) ([]Result[T], *transport.Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	fab, err := transport.New(cfg.N, opts...)
	if err != nil {
		return nil, nil, err
	}
	// One failed party cancels its siblings so nobody blocks forever on
	// a receive that will never be served.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results := make([]Result[T], cfg.N)
	errs := make([]error, cfg.N)
	var wg sync.WaitGroup
	for p := 0; p < cfg.N; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng, err := NewEngineCtx(ctx, cfg, p, fab, rngs[p])
			if err != nil {
				errs[p] = err
				cancel()
				return
			}
			v, err := prog(eng)
			if err != nil {
				errs[p] = fmt.Errorf("party %d: %w", p, err)
				cancel()
				return
			}
			results[p] = Result[T]{Party: p, Value: v, Counters: eng.Counters()}
		}()
	}
	wg.Wait()
	// Prefer the root-cause error: cancellation aborts are secondary
	// effects of the first real failure.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, fab, firstErr
	}
	return results, fab, nil
}
