// Package ssmpc is a synchronous n-party secret-sharing MPC engine over
// Shamir shares: the substrate of the paper's secret-sharing baseline
// (Section II). It provides linear operations locally, BGW/GRR98
// multiplication with degree reduction, batched openings, joint random
// elements and bits, and a statistically masked secure comparison in the
// style of the SS comparison primitives the paper cites ([5, 6]).
//
// Every party runs the same SPMD program against its own Engine; the
// engines communicate over a transport.Fabric and count multiplication
// invocations, openings and communication rounds — the quantities the
// paper's Section VI-B efficiency analysis is stated in.
package ssmpc

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math/big"
	"sync"

	"groupranking/internal/kernel"
	"groupranking/internal/obsv"
	"groupranking/internal/shamir"
	"groupranking/internal/transport"
)

var _wireOnce sync.Once

// RegisterWire registers the engine's wire payloads with gob for
// serialising transports (transport.TCPFabric): every engine round
// exchanges []*big.Int share batches. Safe to call repeatedly.
func RegisterWire() {
	_wireOnce.Do(func() {
		gob.Register(new(big.Int))
		gob.Register([]*big.Int{})
	})
}

// Config describes one MPC session.
type Config struct {
	// N is the number of parties; it must satisfy N ≥ 2·Degree+1 so
	// multiplication degree reduction is possible — the constraint that
	// caps the baseline at (n−1)/2 colluders (Section II).
	N int
	// Degree is the sharing polynomial degree d (max colluders).
	Degree int
	// P is the field prime. For comparisons on l-bit values it must
	// exceed 2^(l+Kappa+3).
	P *big.Int
	// Kappa is the statistical hiding parameter (default 40).
	Kappa int
	// Workers bounds the goroutines batched recombinations fan out on
	// (0 = NumCPU, 1 = serial). Sharing stays serial — it consumes the
	// party RNG — so results are identical at every worker count.
	Workers int
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("ssmpc: need at least one party")
	}
	if c.Degree < 0 || c.N < 2*c.Degree+1 {
		return fmt.Errorf("ssmpc: n=%d cannot support degree %d (need n ≥ 2d+1)", c.N, c.Degree)
	}
	if c.P == nil || !c.P.ProbablyPrime(16) {
		return fmt.Errorf("ssmpc: field modulus missing or composite")
	}
	return nil
}

// Counters tallies the cost quantities of Section VI-B.
type Counters struct {
	Mults  int64 // invocations of the multiplication protocol
	Opens  int64 // opening phases (batched openings count once per value)
	Rounds int64 // synchronous communication rounds
}

// Share is this party's share of a secret (abscissa = party index + 1).
type Share struct {
	y *big.Int
}

// Engine is one party's endpoint of the MPC session.
type Engine struct {
	cfg    Config
	me     int
	fab    transport.Net
	rng    io.Reader
	ctx    context.Context
	round  int
	ctr    Counters
	obs    *obsv.Party
	lambda []*big.Int // Lagrange coefficients at 0 for abscissae 1..N
}

// NewEngine creates party me's endpoint. All parties must share the same
// Config and Fabric.
func NewEngine(cfg Config, me int, fab transport.Net, rng io.Reader) (*Engine, error) {
	return NewEngineCtx(context.Background(), cfg, me, fab, rng)
}

// NewEngineCtx is NewEngine with cancellation: every receive the engine
// performs honours ctx, so a crashed or cancelled sibling turns into a
// prompt typed *AbortError instead of a hung protocol round.
func NewEngineCtx(ctx context.Context, cfg Config, me int, fab transport.Net, rng io.Reader) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Kappa <= 0 {
		cfg.Kappa = 40
	}
	if me < 0 || me >= cfg.N {
		return nil, fmt.Errorf("ssmpc: party index %d out of range", me)
	}
	if fab.N() != cfg.N {
		return nil, fmt.Errorf("ssmpc: fabric has %d endpoints, config has %d", fab.N(), cfg.N)
	}
	xs := make([]int, cfg.N)
	for i := range xs {
		xs[i] = i + 1
	}
	lambda, err := shamir.LagrangeAtZero(xs, cfg.P)
	if err != nil {
		return nil, fmt.Errorf("ssmpc: precomputing Lagrange coefficients: %w", err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Observability: the party handle rides in on the context; the net
	// wrapper charges this engine's sends to the party's current span.
	obs := obsv.PartyFrom(ctx)
	fab = obsv.ObservedNet(fab, obs)
	return &Engine{cfg: cfg, me: me, fab: fab, rng: rng, ctx: ctx, obs: obs, lambda: lambda}, nil
}

// recv is the engine's context-aware, round-checked receive.
func (e *Engine) recv(from, round int) (any, error) {
	p, err := e.fab.RecvCtx(e.ctx, e.me, from, round)
	return p, transport.AnnotatePhase(err, "ssmpc")
}

// gather is the engine's context-aware, round-checked GatherAll.
func (e *Engine) gather(round int) ([]any, error) {
	all, err := e.fab.GatherAllCtx(e.ctx, e.me, round)
	return all, transport.AnnotatePhase(err, "ssmpc")
}

// Party returns this engine's party index.
func (e *Engine) Party() int { return e.me }

// Counters returns a snapshot of this party's cost counters.
func (e *Engine) Counters() Counters { return e.ctr }

// Config returns the session configuration.
func (e *Engine) Config() Config { return e.cfg }

// fieldBytes is the wire size of one field element.
func (e *Engine) fieldBytes() int { return (e.cfg.P.BitLen() + 7) / 8 }

// nextRound advances the synchronous round counter.
func (e *Engine) nextRound() int {
	e.round++
	e.ctr.Rounds++
	e.obs.Add(obsv.OpSSRound, 1)
	return e.round
}

// ShareBatch deals the given secrets (only the dealer's slice is read)
// and returns each party's shares, one communication round for the whole
// batch. count tells non-dealers how many secrets to expect.
func (e *Engine) ShareBatch(dealer int, secrets []*big.Int, count int) ([]Share, error) {
	round := e.nextRound()
	if e.me == dealer {
		if len(secrets) != count {
			return nil, fmt.Errorf("ssmpc: dealer has %d secrets, count is %d", len(secrets), count)
		}
		// perParty[j][k] is party j's share of secret k.
		perParty := make([][]*big.Int, e.cfg.N)
		for j := range perParty {
			perParty[j] = make([]*big.Int, count)
		}
		for k, s := range secrets {
			shares, err := shamir.Split(s, e.cfg.Degree, e.cfg.N, e.cfg.P, e.rng)
			if err != nil {
				return nil, err
			}
			for j := range shares {
				perParty[j][k] = shares[j].Y
			}
		}
		for j := 0; j < e.cfg.N; j++ {
			if j == e.me {
				continue
			}
			if err := e.fab.Send(round, e.me, j, count*e.fieldBytes(), perParty[j]); err != nil {
				return nil, err
			}
		}
		return wrapAll(perParty[e.me]), nil
	}
	payload, err := e.recv(dealer, round)
	if err != nil {
		return nil, err
	}
	ys, ok := payload.([]*big.Int)
	if !ok || len(ys) != count {
		return nil, transport.EnsureAbort(
			fmt.Errorf("ssmpc: malformed share batch from dealer %d", dealer), dealer, "ssmpc")
	}
	if err := e.checkBatch(ys, dealer, "share"); err != nil {
		return nil, err
	}
	return wrapAll(ys), nil
}

// checkBatch is the receive-boundary element check: over a real network
// a peer can send anything, so every share must be present and reduced
// mod P before it enters any recombination. Failures surface as typed
// aborts naming the sender.
func (e *Engine) checkBatch(ys []*big.Int, from int, kind string) error {
	for _, y := range ys {
		if y == nil || y.Sign() < 0 || y.Cmp(e.cfg.P) >= 0 {
			return transport.EnsureAbort(
				fmt.Errorf("ssmpc: party %d sent an out-of-field %s element", from, kind), from, "ssmpc")
		}
	}
	return nil
}

// Share deals a single secret.
func (e *Engine) Share(dealer int, secret *big.Int) (Share, error) {
	var secrets []*big.Int
	if e.me == dealer {
		secrets = []*big.Int{secret}
	}
	out, err := e.ShareBatch(dealer, secrets, 1)
	if err != nil {
		return Share{}, err
	}
	return out[0], nil
}

// OpenBatch reveals the given shared values to every party in one round.
func (e *Engine) OpenBatch(shares []Share) ([]*big.Int, error) {
	round := e.nextRound()
	e.ctr.Opens += int64(len(shares))
	e.obs.Add(obsv.OpSSOpen, int64(len(shares)))
	mine := make([]*big.Int, len(shares))
	for i, s := range shares {
		mine[i] = s.y
	}
	// Openings are broadcasts of share vectors (the opened-histogram
	// rounds of the top-k framework ride on this): on real fabrics they
	// run as echo broadcasts so a party feeding different shares to
	// different peers — splitting the group over what a histogram
	// contains — is identified instead of silently skewing the
	// reconstruction. In-process runs skip the echo.
	all, err := transport.EchoBroadcastCtx(e.ctx, e.fab, e.me, round, len(shares)*e.fieldBytes(), mine)
	if err != nil {
		return nil, transport.AnnotatePhase(err, "ssmpc")
	}
	cols, err := e.columns(all, mine, len(shares), "open")
	if err != nil {
		return nil, err
	}
	out := make([]*big.Int, len(shares))
	if err := kernel.Map(e.ctx, e.cfg.Workers, len(shares), func(k int) error {
		acc := new(big.Int)
		for j := 0; j < e.cfg.N; j++ {
			acc.Add(acc, new(big.Int).Mul(e.lambda[j], cols[j][k]))
		}
		out[k] = acc.Mod(acc, e.cfg.P)
		return nil
	}); err != nil {
		return nil, transport.AnnotatePhase(err, "ssmpc")
	}
	return out, nil
}

// columns validates one gathered batch per party and returns it indexed
// by party, with this party's own slice in place — the layout the
// parallel Lagrange recombinations read.
func (e *Engine) columns(all []any, mine []*big.Int, k int, kind string) ([][]*big.Int, error) {
	cols := make([][]*big.Int, e.cfg.N)
	for j := 0; j < e.cfg.N; j++ {
		if j == e.me {
			cols[j] = mine
			continue
		}
		ys, ok := all[j].([]*big.Int)
		if !ok || len(ys) != k {
			return nil, transport.EnsureAbort(
				fmt.Errorf("ssmpc: malformed %s batch from party %d", kind, j), j, "ssmpc")
		}
		if err := e.checkBatch(ys, j, kind); err != nil {
			return nil, err
		}
		cols[j] = ys
	}
	return cols, nil
}

// Open reveals one shared value.
func (e *Engine) Open(s Share) (*big.Int, error) {
	out, err := e.OpenBatch([]Share{s})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Add returns a share of a+b (local).
func (e *Engine) Add(a, b Share) Share {
	y := new(big.Int).Add(a.y, b.y)
	return Share{y: y.Mod(y, e.cfg.P)}
}

// Sub returns a share of a−b (local).
func (e *Engine) Sub(a, b Share) Share {
	y := new(big.Int).Sub(a.y, b.y)
	return Share{y: y.Mod(y, e.cfg.P)}
}

// Scale returns a share of k·a (local).
func (e *Engine) Scale(a Share, k *big.Int) Share {
	y := new(big.Int).Mul(a.y, k)
	return Share{y: y.Mod(y, e.cfg.P)}
}

// AddConst returns a share of a+k (local).
func (e *Engine) AddConst(a Share, k *big.Int) Share {
	y := new(big.Int).Add(a.y, k)
	return Share{y: y.Mod(y, e.cfg.P)}
}

// ConstShare returns a degree-0 share of the public constant k (local).
func (e *Engine) ConstShare(k *big.Int) Share {
	return Share{y: new(big.Int).Mod(k, e.cfg.P)}
}

// MulBatch multiplies element-wise with one degree-reduction round
// (GRR98): each party reshares its degree-2d product share with a fresh
// degree-d polynomial, and the new share is the Lagrange combination of
// the received pieces.
func (e *Engine) MulBatch(as, bs []Share) ([]Share, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("ssmpc: MulBatch length mismatch %d vs %d", len(as), len(bs))
	}
	k := len(as)
	if k == 0 {
		return nil, nil
	}
	round := e.nextRound()
	e.ctr.Mults += int64(k)
	e.obs.Add(obsv.OpSSMul, int64(k))

	// perParty[j][i] is the piece for party j of my i-th product share.
	perParty := make([][]*big.Int, e.cfg.N)
	for j := range perParty {
		perParty[j] = make([]*big.Int, k)
	}
	for i := 0; i < k; i++ {
		h := new(big.Int).Mul(as[i].y, bs[i].y)
		h.Mod(h, e.cfg.P)
		pieces, err := shamir.Split(h, e.cfg.Degree, e.cfg.N, e.cfg.P, e.rng)
		if err != nil {
			return nil, err
		}
		for j := range pieces {
			perParty[j][i] = pieces[j].Y
		}
	}
	for j := 0; j < e.cfg.N; j++ {
		if j == e.me {
			continue
		}
		if err := e.fab.Send(round, e.me, j, k*e.fieldBytes(), perParty[j]); err != nil {
			return nil, err
		}
	}
	all, err := e.gather(round)
	if err != nil {
		return nil, err
	}
	cols, err := e.columns(all, perParty[e.me], k, "mul")
	if err != nil {
		return nil, err
	}
	out := make([]Share, k)
	if err := kernel.Map(e.ctx, e.cfg.Workers, k, func(i int) error {
		acc := new(big.Int)
		for j := 0; j < e.cfg.N; j++ {
			acc.Add(acc, new(big.Int).Mul(e.lambda[j], cols[j][i]))
		}
		out[i] = Share{y: acc.Mod(acc, e.cfg.P)}
		return nil
	}); err != nil {
		return nil, transport.AnnotatePhase(err, "ssmpc")
	}
	return out, nil
}

// Mul multiplies two shared values (one multiplication invocation).
func (e *Engine) Mul(a, b Share) (Share, error) {
	out, err := e.MulBatch([]Share{a}, []Share{b})
	if err != nil {
		return Share{}, err
	}
	return out[0], nil
}

func wrapAll(ys []*big.Int) []Share {
	out := make([]Share, len(ys))
	for i, y := range ys {
		out[i] = Share{y: y}
	}
	return out
}
