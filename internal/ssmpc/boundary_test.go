package ssmpc

import (
	"crypto/rand"
	"errors"
	"math/big"
	"strings"
	"testing"
	"time"

	"groupranking/internal/fixedbig"
	"groupranking/internal/transport"
)

// These tests pin the engine's receive-boundary hardening: a dealer on
// a real network can send anything, so structurally malformed or
// out-of-field share batches must surface as typed aborts naming the
// sender — before any element enters a recombination.

func boundaryEngine(t *testing.T) (*Engine, *transport.Fabric) {
	t.Helper()
	p, err := rand.Prime(fixedbig.NewDRBG("boundary-prime"), 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 3, Degree: 1, P: p, Kappa: 40}
	fab, err := transport.New(3, transport.WithRecvTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, 1, fab, fixedbig.NewDRBG("boundary-rng"))
	if err != nil {
		t.Fatal(err)
	}
	return e, fab
}

func TestShareBatchRejectsOutOfFieldElements(t *testing.T) {
	cases := []struct {
		name    string
		payload any
		want    string
	}{
		{"not a batch", "garbage", "malformed"},
		{"wrong count", []*big.Int{big.NewInt(1)}, "malformed"},
		{"nil element", []*big.Int{big.NewInt(1), nil}, "out-of-field"},
		{"negative element", []*big.Int{big.NewInt(-1), big.NewInt(1)}, "out-of-field"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e, fab := boundaryEngine(t)
			// Round 1 is the engine's first ShareBatch; party 0 plays a
			// cheating dealer.
			if err := fab.Send(1, 0, 1, 4, tc.payload); err != nil {
				t.Fatal(err)
			}
			_, err := e.ShareBatch(0, nil, 2)
			if err == nil {
				t.Fatal("cheating dealer's batch accepted")
			}
			var abort *transport.AbortError
			if !errors.As(err, &abort) {
				t.Fatalf("error %v is not a typed abort", err)
			}
			if abort.Party != 0 {
				t.Errorf("abort names party %d, want the dealer 0", abort.Party)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestShareBatchRejectsUnreducedElement(t *testing.T) {
	e, fab := boundaryEngine(t)
	huge := new(big.Int).Set(e.cfg.P) // == P, so not reduced mod P
	if err := fab.Send(1, 0, 1, 4, []*big.Int{big.NewInt(1), huge}); err != nil {
		t.Fatal(err)
	}
	_, err := e.ShareBatch(0, nil, 2)
	if err == nil {
		t.Fatal("unreduced share accepted")
	}
	if !strings.Contains(err.Error(), "out-of-field") {
		t.Errorf("error %q does not mention the field violation", err)
	}
}
