package ssmpc

import (
	"crypto/rand"
	"math/big"
	"testing"

	"groupranking/internal/fixedbig"
)

func testConfig(t *testing.T, n, degree int) Config {
	t.Helper()
	p, err := rand.Prime(fixedbig.NewDRBG("ssmpc-prime"), 128)
	if err != nil {
		t.Fatal(err)
	}
	return Config{N: n, Degree: degree, P: p, Kappa: 40}
}

func TestShareOpenRoundTrip(t *testing.T) {
	cfg := testConfig(t, 5, 2)
	secretVals := []int64{0, 1, 42, -7, 1 << 40}
	results, _, err := RunProgram(cfg, "share-open", nil, func(e *Engine) ([]*big.Int, error) {
		out := make([]*big.Int, 0, len(secretVals))
		for _, v := range secretVals {
			var secret *big.Int
			if e.Party() == 0 {
				secret = big.NewInt(v)
			}
			sh, err := e.Share(0, secret)
			if err != nil {
				return nil, err
			}
			o, err := e.Open(sh)
			if err != nil {
				return nil, err
			}
			out = append(out, o)
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		for i, v := range secretVals {
			want := new(big.Int).Mod(big.NewInt(v), cfg.P)
			if r.Value[i].Cmp(want) != 0 {
				t.Errorf("party %d secret %d: got %s, want %s", r.Party, v, r.Value[i], want)
			}
		}
	}
}

func TestLinearOpsAndMul(t *testing.T) {
	cfg := testConfig(t, 5, 2)
	results, _, err := RunProgram(cfg, "linear-mul", nil, func(e *Engine) (*big.Int, error) {
		var sa, sb *big.Int
		if e.Party() == 0 {
			sa = big.NewInt(6)
		}
		if e.Party() == 1 {
			sb = big.NewInt(7)
		}
		a, err := e.Share(0, sa)
		if err != nil {
			return nil, err
		}
		b, err := e.Share(1, sb)
		if err != nil {
			return nil, err
		}
		// (3a + b + 5)·b − a = (18+7+5)·7 − 6 = 204.
		lin := e.AddConst(e.Add(e.Scale(a, big.NewInt(3)), b), big.NewInt(5))
		prod, err := e.Mul(lin, b)
		if err != nil {
			return nil, err
		}
		return e.Open(e.Sub(prod, a))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Value.Int64() != 204 {
			t.Errorf("party %d: got %s, want 204", r.Party, r.Value)
		}
	}
}

func TestMulBatch(t *testing.T) {
	cfg := testConfig(t, 7, 3)
	as := []int64{3, 0, 12, 1}
	bs := []int64{9, 5, 12, 1}
	results, _, err := RunProgram(cfg, "mul-batch", nil, func(e *Engine) ([]*big.Int, error) {
		shAs := make([]Share, len(as))
		shBs := make([]Share, len(bs))
		for i := range as {
			var va, vb *big.Int
			if e.Party() == 0 {
				va, vb = big.NewInt(as[i]), big.NewInt(bs[i])
			}
			var err error
			if shAs[i], err = e.Share(0, va); err != nil {
				return nil, err
			}
			if shBs[i], err = e.Share(0, vb); err != nil {
				return nil, err
			}
		}
		prods, err := e.MulBatch(shAs, shBs)
		if err != nil {
			return nil, err
		}
		return e.OpenBatch(prods)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range as {
		want := as[i] * bs[i]
		if results[0].Value[i].Int64() != want {
			t.Errorf("product %d: got %s, want %d", i, results[0].Value[i], want)
		}
	}
}

func TestRandomElementsAgree(t *testing.T) {
	cfg := testConfig(t, 5, 2)
	results, _, err := RunProgram(cfg, "rand-elems", nil, func(e *Engine) ([]*big.Int, error) {
		rs, err := e.RandomElements(3)
		if err != nil {
			return nil, err
		}
		return e.OpenBatch(rs)
	})
	if err != nil {
		t.Fatal(err)
	}
	// All parties open the same values, and they are not all equal.
	for i := 0; i < 3; i++ {
		for _, r := range results {
			if r.Value[i].Cmp(results[0].Value[i]) != 0 {
				t.Fatalf("parties disagree on random element %d", i)
			}
		}
	}
	if results[0].Value[0].Cmp(results[0].Value[1]) == 0 && results[0].Value[1].Cmp(results[0].Value[2]) == 0 {
		t.Error("three joint random elements all equal; randomness looks broken")
	}
}

func TestRandomBitsAreBits(t *testing.T) {
	cfg := testConfig(t, 5, 2)
	const k = 24
	results, _, err := RunProgram(cfg, "rand-bits", nil, func(e *Engine) ([]*big.Int, error) {
		bits, err := e.RandomBits(k)
		if err != nil {
			return nil, err
		}
		return e.OpenBatch(bits)
	})
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for i, v := range results[0].Value {
		if !(v.Sign() == 0 || v.Cmp(big.NewInt(1)) == 0) {
			t.Errorf("bit %d opened to %s", i, v)
		}
		if v.Sign() != 0 {
			ones++
		}
	}
	if ones == 0 || ones == k {
		t.Errorf("all %d random bits identical (%d ones); distribution broken", k, ones)
	}
}

func TestBitLTPublic(t *testing.T) {
	cfg := testConfig(t, 5, 2)
	cases := []struct {
		c, r  int64
		width int
	}{
		{0, 0, 4}, {0, 1, 4}, {1, 0, 4}, {5, 5, 4}, {3, 9, 4}, {9, 3, 4},
		{14, 15, 4}, {15, 14, 4}, {7, 8, 4}, {8, 7, 4},
	}
	for _, tc := range cases {
		tc := tc
		results, _, err := RunProgram(cfg, "bitlt", nil, func(e *Engine) (*big.Int, error) {
			cBits, err := fixedbig.Bits(big.NewInt(tc.c), tc.width)
			if err != nil {
				return nil, err
			}
			rBits := make([]Share, tc.width)
			for i := 0; i < tc.width; i++ {
				var v *big.Int
				if e.Party() == 0 {
					v = big.NewInt(int64((tc.r >> i) & 1))
				}
				if rBits[i], err = e.Share(0, v); err != nil {
					return nil, err
				}
			}
			lt, err := e.BitLTPublic(cBits, rBits)
			if err != nil {
				return nil, err
			}
			return e.Open(lt)
		})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if tc.c < tc.r {
			want = 1
		}
		if results[0].Value.Int64() != want {
			t.Errorf("[%d < %d]: got %s, want %d", tc.c, tc.r, results[0].Value, want)
		}
	}
}

func TestMod2m(t *testing.T) {
	cfg := testConfig(t, 5, 2)
	cases := []struct {
		x          int64
		lPrime, m  int
		wantMod2mV int64
	}{
		{13, 5, 3, 5}, {8, 5, 3, 0}, {0, 5, 3, 0}, {31, 5, 3, 7}, {255, 9, 8, 255}, {256, 9, 8, 0},
	}
	for _, tc := range cases {
		tc := tc
		results, _, err := RunProgram(cfg, "mod2m", nil, func(e *Engine) (*big.Int, error) {
			var v *big.Int
			if e.Party() == 0 {
				v = big.NewInt(tc.x)
			}
			x, err := e.Share(0, v)
			if err != nil {
				return nil, err
			}
			low, err := e.Mod2m(x, tc.lPrime, tc.m)
			if err != nil {
				return nil, err
			}
			return e.Open(low)
		})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Value.Int64() != tc.wantMod2mV {
			t.Errorf("%d mod 2^%d: got %s, want %d", tc.x, tc.m, results[0].Value, tc.wantMod2mV)
		}
	}
}

func TestGTEAndLT(t *testing.T) {
	cfg := testConfig(t, 5, 2)
	const l = 8
	cases := []struct{ a, b int64 }{
		{0, 0}, {0, 1}, {1, 0}, {100, 100}, {255, 0}, {0, 255}, {128, 127}, {127, 128}, {200, 200},
	}
	for _, tc := range cases {
		tc := tc
		results, _, err := RunProgram(cfg, "gte", nil, func(e *Engine) ([]*big.Int, error) {
			var va, vb *big.Int
			if e.Party() == 0 {
				va, vb = big.NewInt(tc.a), big.NewInt(tc.b)
			}
			a, err := e.Share(0, va)
			if err != nil {
				return nil, err
			}
			b, err := e.Share(0, vb)
			if err != nil {
				return nil, err
			}
			gte, err := e.GTE(a, b, l)
			if err != nil {
				return nil, err
			}
			lt, err := e.LT(a, b, l)
			if err != nil {
				return nil, err
			}
			return e.OpenBatch([]Share{gte, lt})
		})
		if err != nil {
			t.Fatal(err)
		}
		wantGTE := int64(0)
		if tc.a >= tc.b {
			wantGTE = 1
		}
		got := results[0].Value
		if got[0].Int64() != wantGTE || got[1].Int64() != 1-wantGTE {
			t.Errorf("GTE(%d,%d): got (%s,%s), want (%d,%d)", tc.a, tc.b, got[0], got[1], wantGTE, 1-wantGTE)
		}
	}
}

func TestCountersAdvance(t *testing.T) {
	cfg := testConfig(t, 5, 2)
	results, fab, err := RunProgram(cfg, "counters", nil, func(e *Engine) (*big.Int, error) {
		var v *big.Int
		if e.Party() == 0 {
			v = big.NewInt(50)
		}
		a, err := e.Share(0, v)
		if err != nil {
			return nil, err
		}
		gte, err := e.GTE(a, a, 8)
		if err != nil {
			return nil, err
		}
		return e.Open(gte)
	})
	if err != nil {
		t.Fatal(err)
	}
	c := results[0].Counters
	if c.Mults == 0 || c.Rounds == 0 || c.Opens == 0 {
		t.Errorf("counters did not advance: %+v", c)
	}
	if fab.Stats().TotalBytes() == 0 {
		t.Error("no bytes recorded on the fabric")
	}
	// A single comparison should cost on the order of 3l+κ multiplications.
	if c.Mults > 1000 {
		t.Errorf("comparison cost implausibly high: %d mults", c.Mults)
	}
}

func TestConfigValidation(t *testing.T) {
	p, err := rand.Prime(fixedbig.NewDRBG("cfg-prime"), 64)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{N: 0, Degree: 0, P: p},
		{N: 4, Degree: 2, P: p},               // n < 2d+1
		{N: 3, Degree: -1, P: p},              // negative degree
		{N: 3, Degree: 1},                     // missing prime
		{N: 3, Degree: 1, P: big.NewInt(100)}, // composite
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	good := Config{N: 5, Degree: 2, P: p}
	if err := good.validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestGTEFieldTooSmall(t *testing.T) {
	p, err := rand.Prime(fixedbig.NewDRBG("small-prime"), 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 3, Degree: 1, P: p, Kappa: 40}
	_, _, err = RunProgram(cfg, "too-small", nil, func(e *Engine) (*big.Int, error) {
		var v *big.Int
		if e.Party() == 0 {
			v = big.NewInt(1)
		}
		a, err := e.Share(0, v)
		if err != nil {
			return nil, err
		}
		if _, err := e.GTE(a, a, 16); err != nil {
			return nil, err
		}
		return big.NewInt(0), nil
	})
	if err == nil {
		t.Error("GTE with an undersized field should fail")
	}
}

func TestMinimumPartyCountForDegree(t *testing.T) {
	// 3 parties, degree 1 is the smallest multiplication-capable session.
	cfg := testConfig(t, 3, 1)
	results, _, err := RunProgram(cfg, "min-parties", nil, func(e *Engine) (*big.Int, error) {
		var v *big.Int
		if e.Party() == 0 {
			v = big.NewInt(9)
		}
		a, err := e.Share(0, v)
		if err != nil {
			return nil, err
		}
		sq, err := e.Mul(a, a)
		if err != nil {
			return nil, err
		}
		return e.Open(sq)
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Value.Int64() != 81 {
		t.Errorf("got %s, want 81", results[0].Value)
	}
}
