package dotprod

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"groupranking/internal/fixedbig"
)

func testParams(t *testing.T) Params {
	t.Helper()
	p, err := rand.Prime(fixedbig.NewDRBG("dotprod-field"), 128)
	if err != nil {
		t.Fatal(err)
	}
	return DefaultSRange(p)
}

func bigVec(vals ...int64) []*big.Int {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		out[i] = big.NewInt(v)
	}
	return out
}

func plainDot(w, v []*big.Int, alpha, p *big.Int) *big.Int {
	acc := new(big.Int).Set(alpha)
	for i := range w {
		acc.Add(acc, new(big.Int).Mul(w[i], v[i]))
	}
	return acc.Mod(acc, p)
}

func TestComputeMatchesPlainDot(t *testing.T) {
	params := testParams(t)
	rng := fixedbig.NewDRBG("dotprod-basic")
	cases := []struct {
		name  string
		w, v  []*big.Int
		alpha int64
	}{
		{"ones", bigVec(1, 1, 1), bigVec(1, 1, 1), 0},
		{"mixed", bigVec(3, -2, 7, 0), bigVec(5, 4, -1, 9), 12},
		{"single", bigVec(42), bigVec(17), 5},
		{"zero alpha", bigVec(10, 20), bigVec(-3, 4), 0},
		{"negative alpha", bigVec(2, 3), bigVec(4, 5), -7},
		{"long", bigVec(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12), bigVec(12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1), 99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Compute(params, tc.w, tc.v, big.NewInt(tc.alpha), rng)
			if err != nil {
				t.Fatal(err)
			}
			want := plainDot(tc.w, tc.v, big.NewInt(tc.alpha), params.P)
			if got.Cmp(want) != 0 {
				t.Errorf("got %s, want %s", got, want)
			}
		})
	}
}

func TestComputeQuick(t *testing.T) {
	params := testParams(t)
	rng := fixedbig.NewDRBG("dotprod-quick")
	f := func(w0, w1, w2, v0, v1, v2 int32, alpha int32) bool {
		w := bigVec(int64(w0), int64(w1), int64(w2))
		v := bigVec(int64(v0), int64(v1), int64(v2))
		a := big.NewInt(int64(alpha))
		got, err := Compute(params, w, v, a, rng)
		if err != nil {
			return false
		}
		return got.Cmp(plainDot(w, v, a, params.P)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMessageFlowSplitRoles(t *testing.T) {
	params := testParams(t)
	rng := fixedbig.NewDRBG("dotprod-flow")
	w := bigVec(7, -3, 11)
	v := bigVec(2, 5, -4)
	alpha := big.NewInt(1000)

	bob, msg, err := NewBob(params, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Matrix shape invariants: s within range, d = len(w)+1.
	s := len(msg.QX)
	if s < params.SMin || s > params.SMax {
		t.Errorf("s = %d outside [%d, %d]", s, params.SMin, params.SMax)
	}
	if len(msg.QX[0]) != len(w)+1 {
		t.Errorf("d = %d, want %d", len(msg.QX[0]), len(w)+1)
	}
	if msg.WireBytes(params) <= 0 {
		t.Error("wire bytes must be positive")
	}

	reply, err := AliceRespond(params, msg, v, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if reply.WireBytes(params) != 2*params.FieldBytes() {
		t.Error("reply wire bytes wrong")
	}
	got, err := bob.Finish(reply)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(plainDot(w, v, alpha, params.P)) != 0 {
		t.Error("split-role run disagrees with plain dot product")
	}
}

func TestFinishSingleUse(t *testing.T) {
	params := testParams(t)
	rng := fixedbig.NewDRBG("dotprod-once")
	bob, msg, err := NewBob(params, bigVec(1, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := AliceRespond(params, msg, bigVec(3, 4), big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Finish(reply); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Finish(reply); err == nil {
		t.Error("second Finish accepted")
	}
}

func TestDimensionMismatch(t *testing.T) {
	params := testParams(t)
	rng := fixedbig.NewDRBG("dotprod-dim")
	_, msg, err := NewBob(params, bigVec(1, 2, 3), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AliceRespond(params, msg, bigVec(1, 2), big.NewInt(0)); err == nil {
		t.Error("short v accepted")
	}
	if _, err := AliceRespond(params, msg, bigVec(1, 2, 3, 4), big.NewInt(0)); err == nil {
		t.Error("long v accepted")
	}
}

func TestValidation(t *testing.T) {
	rng := fixedbig.NewDRBG("dotprod-val")
	if _, _, err := NewBob(Params{}, bigVec(1), rng); err == nil {
		t.Error("missing modulus accepted")
	}
	p, _ := rand.Prime(rng, 64)
	if _, _, err := NewBob(Params{P: p, SMin: 1, SMax: 0}, bigVec(1), rng); err == nil {
		t.Error("bad s range accepted")
	}
	if _, _, err := NewBob(DefaultSRange(p), nil, rng); err == nil {
		t.Error("empty vector accepted")
	}
}

func TestAliceLearnsMaskedViewOnly(t *testing.T) {
	// Structural privacy check: two different Bob vectors of the same
	// dimension produce QX/c'/g flows with identical shapes, and repeated
	// runs with the same vector produce different flows (masking is
	// randomised). This is the observable the HBC security argument
	// relies on.
	params := testParams(t)
	rng := fixedbig.NewDRBG("dotprod-priv")
	w := bigVec(5, 6, 7)
	_, m1, err := NewBob(params, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, m2, err := NewBob(params, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range m1.CPrime {
		if m1.CPrime[j].Cmp(m2.CPrime[j]) != 0 {
			same = false
			break
		}
	}
	if same {
		t.Error("two runs produced identical c' vectors; masking looks deterministic")
	}
}

func TestLargeFieldValues(t *testing.T) {
	// Values near the field size must wrap correctly.
	params := testParams(t)
	rng := fixedbig.NewDRBG("dotprod-large")
	big1 := new(big.Int).Sub(params.P, big.NewInt(1))
	w := []*big.Int{big1, big.NewInt(1)}
	v := []*big.Int{big1, big.NewInt(0)}
	got, err := Compute(params, w, v, big.NewInt(0), rng)
	if err != nil {
		t.Fatal(err)
	}
	want := plainDot(w, v, big.NewInt(0), params.P)
	if got.Cmp(want) != 0 {
		t.Errorf("got %s, want %s", got, want)
	}
}
