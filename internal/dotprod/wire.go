package dotprod

import (
	"fmt"
	"math/big"

	"groupranking/internal/wirecodec"
)

// Hand-rolled wire forms for both protocol flows. Layouts:
//
//	BobMessage: u32 rows ‖ rows×(count-prefixed []*big.Int) ‖ CPrime ‖ G
//	AliceReply: A ‖ H (sign ‖ u32 len ‖ magnitude each)
//
// Field-element range checks stay in Validate, which both receive
// paths already run; decoding is structural only.

// AppendBinary appends m's wire form to dst.
func (m *BobMessage) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirecodec.AppendU32(dst, uint32(len(m.QX)))
	var err error
	for _, row := range m.QX {
		if dst, err = wirecodec.AppendBigInts(dst, row); err != nil {
			return nil, fmt.Errorf("dotprod: QX row: %w", err)
		}
	}
	if dst, err = wirecodec.AppendBigInts(dst, m.CPrime); err != nil {
		return nil, fmt.Errorf("dotprod: c': %w", err)
	}
	if dst, err = wirecodec.AppendBigInts(dst, m.G); err != nil {
		return nil, fmt.Errorf("dotprod: g: %w", err)
	}
	return dst, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *BobMessage) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(make([]byte, 0, 256))
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *BobMessage) UnmarshalBinary(data []byte) error {
	r := wirecodec.NewReader(data)
	rows := r.Count(4)
	qx := make([][]*big.Int, 0, rows)
	for i := 0; i < rows; i++ {
		qx = append(qx, r.BigInts())
	}
	cPrime := r.BigInts()
	g := r.BigInts()
	if err := r.Finish(); err != nil {
		return fmt.Errorf("dotprod: bob message: %w", err)
	}
	m.QX, m.CPrime, m.G = qx, cPrime, g
	return nil
}

// AppendBinary appends a's wire form to dst.
func (a *AliceReply) AppendBinary(dst []byte) ([]byte, error) {
	var err error
	if dst, err = wirecodec.AppendBigInt(dst, a.A); err != nil {
		return nil, fmt.Errorf("dotprod: a: %w", err)
	}
	if dst, err = wirecodec.AppendBigInt(dst, a.H); err != nil {
		return nil, fmt.Errorf("dotprod: h: %w", err)
	}
	return dst, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (a *AliceReply) MarshalBinary() ([]byte, error) {
	return a.AppendBinary(make([]byte, 0, 64))
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (a *AliceReply) UnmarshalBinary(data []byte) error {
	r := wirecodec.NewReader(data)
	av, hv := r.BigInt(), r.BigInt()
	if err := r.Finish(); err != nil {
		return fmt.Errorf("dotprod: alice reply: %w", err)
	}
	a.A, a.H = av, hv
	return nil
}

func init() {
	wirecodec.Register(wirecodec.IDRangeProtocol, "dotprod bob message",
		[]any{&BobMessage{}},
		func(dst []byte, v any) ([]byte, error) { return v.(*BobMessage).AppendBinary(dst) },
		func(data []byte) (any, error) {
			m := new(BobMessage)
			if err := m.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return m, nil
		})
	wirecodec.Register(wirecodec.IDRangeProtocol+1, "dotprod alice reply",
		[]any{&AliceReply{}},
		func(dst []byte, v any) ([]byte, error) { return v.(*AliceReply).AppendBinary(dst) },
		func(data []byte) (any, error) {
			a := new(AliceReply)
			if err := a.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return a, nil
		})
}
