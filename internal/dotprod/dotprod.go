// Package dotprod implements the secure two-party dot-product protocol of
// Ioannidis, Grama and Atallah (Section IV-A of the paper). Bob holds a
// (d−1)-dimensional vector w; Alice holds a (d−1)-dimensional vector v and
// a private offset α. At the end Bob learns w·v + α and Alice learns
// nothing. Privacy of both inputs rests on the masked linear system being
// underdetermined: Alice sees QX, c' and g, which admit many consistent
// (w, Q, X) assignments; Bob sees a and h, which are masked by α.
//
// The protocol runs over a prime field Z_P supplied by the caller; all
// published quantities are field elements, so partial information does not
// leak through magnitudes. The framework (Section V) instantiates Bob as a
// participant with w = [vg, ve*ve, ve, 1] and Alice as the initiator with
// v = [ρ·wg, −ρ·we, 2ρ(we*ve₀)] and α = ρ_j, making Bob's output the
// masked partial gain β = ρ·p + ρ_j.
package dotprod

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math/big"
	"sync"

	"groupranking/internal/fixedbig"
	"groupranking/internal/kernel"
	"groupranking/internal/obsv"
)

var _wireOnce sync.Once

// RegisterWire registers both protocol flows with gob for serialising
// transports (transport.TCPFabric). Safe to call repeatedly; in-memory
// fabrics do not need it.
func RegisterWire() {
	_wireOnce.Do(func() {
		gob.Register(&BobMessage{})
		gob.Register(&AliceReply{})
	})
}

// Params fixes the field and the random matrix size range.
type Params struct {
	// P is the field modulus; it must be prime and comfortably larger
	// than any dot product the caller can produce.
	P *big.Int
	// SMin and SMax bound the random matrix dimension s (inclusive).
	// The paper notes s need not be large; defaults are 5..10.
	SMin, SMax int
	// Obs, when non-nil, receives the field-multiplication counts of
	// this party's side of the protocol.
	Obs *obsv.Party
	// Workers bounds the goroutines the matrix arithmetic fans out on
	// (0 = NumCPU, 1 = serial). Randomness is always drawn serially, so
	// every worker count produces identical flows.
	Workers int
}

// DefaultSRange returns params with the default s range over field P.
func DefaultSRange(p *big.Int) Params { return Params{P: p, SMin: 5, SMax: 10} }

func (p Params) validate() error {
	if p.P == nil || p.P.Sign() <= 0 {
		return fmt.Errorf("dotprod: field modulus missing")
	}
	if p.SMin < 2 || p.SMax < p.SMin {
		return fmt.Errorf("dotprod: invalid s range [%d, %d]", p.SMin, p.SMax)
	}
	return nil
}

// BobMessage is the first flow, Bob → Alice.
type BobMessage struct {
	QX     [][]*big.Int // s×d masked matrix
	CPrime []*big.Int   // c + R1·R2·f, d entries
	G      []*big.Int   // R1·R3·f, d entries
}

// AliceReply is the second flow, Alice → Bob.
type AliceReply struct {
	A *big.Int
	H *big.Int
}

// checkElem rejects a field element a peer has no business sending:
// absent, negative or not reduced mod P.
func checkElem(e, p *big.Int) error {
	if e == nil {
		return fmt.Errorf("dotprod: missing field element")
	}
	if e.Sign() < 0 || e.Cmp(p) >= 0 {
		return fmt.Errorf("dotprod: field element out of range")
	}
	return nil
}

// Validate is the receive-boundary check for the Bob→Alice flow: over a
// real network the message is attacker-controlled, so the matrix must be
// rectangular with the advertised dimensions, s must be inside the
// agreed range, and every entry must be a reduced field element.
func (m *BobMessage) Validate(p Params) error {
	if m == nil {
		return fmt.Errorf("dotprod: missing message")
	}
	s := len(m.QX)
	if s < p.SMin || s > p.SMax {
		return fmt.Errorf("dotprod: matrix dimension s=%d outside [%d, %d]", s, p.SMin, p.SMax)
	}
	d := len(m.QX[0])
	if d < 2 {
		return fmt.Errorf("dotprod: vector dimension d=%d too small", d)
	}
	if len(m.CPrime) != d || len(m.G) != d {
		return fmt.Errorf("dotprod: dimension mismatch (d=%d, len(c')=%d, len(g)=%d)", d, len(m.CPrime), len(m.G))
	}
	for i, row := range m.QX {
		if len(row) != d {
			return fmt.Errorf("dotprod: ragged QX matrix (row %d has %d entries, want %d)", i, len(row), d)
		}
		for _, e := range row {
			if err := checkElem(e, p.P); err != nil {
				return err
			}
		}
	}
	for _, e := range m.CPrime {
		if err := checkElem(e, p.P); err != nil {
			return err
		}
	}
	for _, e := range m.G {
		if err := checkElem(e, p.P); err != nil {
			return err
		}
	}
	return nil
}

// Validate is the receive-boundary check for the Alice→Bob flow.
func (r *AliceReply) Validate(p Params) error {
	if r == nil {
		return fmt.Errorf("dotprod: missing reply")
	}
	if err := checkElem(r.A, p.P); err != nil {
		return err
	}
	return checkElem(r.H, p.P)
}

// Bob holds Bob's secret protocol state between the two flows.
type Bob struct {
	params Params
	b      *big.Int // Σ_i Q_{ir}
	r2, r3 *big.Int
	done   bool
}

// FieldBytes is the per-element wire size for the cost model.
func (p Params) FieldBytes() int { return (p.P.BitLen() + 7) / 8 }

// WireBytes returns the byte size of the Bob→Alice flow for a message
// with the given matrix dimensions.
func (m *BobMessage) WireBytes(p Params) int {
	s := len(m.QX)
	d := 0
	if s > 0 {
		d = len(m.QX[0])
	}
	return (s*d + 2*len(m.CPrime)) * p.FieldBytes()
}

// WireBytes returns the byte size of the Alice→Bob flow.
func (r *AliceReply) WireBytes(p Params) int { return 2 * p.FieldBytes() }

// NewBob starts the protocol for Bob's vector w, returning his retained
// state and the message for Alice.
func NewBob(params Params, w []*big.Int, rng io.Reader) (*Bob, *BobMessage, error) {
	if err := params.validate(); err != nil {
		return nil, nil, err
	}
	if len(w) == 0 {
		return nil, nil, fmt.Errorf("dotprod: empty input vector")
	}
	P := params.P
	d := len(w) + 1

	span := big.NewInt(int64(params.SMax - params.SMin + 1))
	sBig, err := fixedbig.RandInt(rng, span)
	if err != nil {
		return nil, nil, err
	}
	s := params.SMin + int(sBig.Int64())

	rBig, err := fixedbig.RandInt(rng, big.NewInt(int64(s)))
	if err != nil {
		return nil, nil, err
	}
	r := int(rBig.Int64())

	// X: s×d, row r is [w, 1], the rest uniform.
	x := make([][]*big.Int, s)
	for i := range x {
		x[i] = make([]*big.Int, d)
		if i == r {
			for j, wj := range w {
				x[i][j] = new(big.Int).Mod(wj, P)
			}
			x[i][d-1] = big.NewInt(1)
			continue
		}
		for j := range x[i] {
			if x[i][j], err = fixedbig.RandInt(rng, P); err != nil {
				return nil, nil, err
			}
		}
	}

	// Q: s×s uniform, resampled until column r has a non-zero sum so the
	// final division is well defined.
	var q [][]*big.Int
	b := new(big.Int)
	for b.Sign() == 0 {
		q = make([][]*big.Int, s)
		for i := range q {
			q[i] = make([]*big.Int, s)
			for j := range q[i] {
				if q[i][j], err = fixedbig.RandInt(rng, P); err != nil {
					return nil, nil, err
				}
			}
		}
		b.SetInt64(0)
		for i := 0; i < s; i++ {
			b.Add(b, q[i][r])
		}
		b.Mod(b, P)
	}

	// c = Σ_{k≠r} colsum_k · x_k, where colsum_k = Σ_i Q_{ik}.
	c := zeroVec(d)
	for k := 0; k < s; k++ {
		if k == r {
			continue
		}
		colsum := new(big.Int)
		for i := 0; i < s; i++ {
			colsum.Add(colsum, q[i][k])
		}
		colsum.Mod(colsum, P)
		for j := 0; j < d; j++ {
			c[j].Add(c[j], new(big.Int).Mul(colsum, x[k][j]))
			c[j].Mod(c[j], P)
		}
	}

	// Masks.
	r1, err := fixedbig.RandNonZero(rng, P)
	if err != nil {
		return nil, nil, err
	}
	r2, err := fixedbig.RandNonZero(rng, P)
	if err != nil {
		return nil, nil, err
	}
	r3, err := fixedbig.RandNonZero(rng, P)
	if err != nil {
		return nil, nil, err
	}
	f := make([]*big.Int, d)
	for j := range f {
		if f[j], err = fixedbig.RandInt(rng, P); err != nil {
			return nil, nil, err
		}
	}

	r1r2 := new(big.Int).Mul(r1, r2)
	r1r2.Mod(r1r2, P)
	r1r3 := new(big.Int).Mul(r1, r3)
	r1r3.Mod(r1r3, P)
	cPrime := make([]*big.Int, d)
	g := make([]*big.Int, d)
	for j := 0; j < d; j++ {
		cPrime[j] = new(big.Int).Mul(r1r2, f[j])
		cPrime[j].Add(cPrime[j], c[j])
		cPrime[j].Mod(cPrime[j], P)
		g[j] = new(big.Int).Mul(r1r3, f[j])
		g[j].Mod(g[j], P)
	}

	// QX: s×d product. All randomness is drawn by now, so the rows fan
	// out across workers; each row only reads q and x.
	qx := make([][]*big.Int, s)
	_ = kernel.Map(context.Background(), params.Workers, s, func(i int) error {
		qx[i] = make([]*big.Int, d)
		for j := 0; j < d; j++ {
			acc := new(big.Int)
			for k := 0; k < s; k++ {
				acc.Add(acc, new(big.Int).Mul(q[i][k], x[k][j]))
			}
			qx[i][j] = acc.Mod(acc, P)
		}
		return nil
	})

	// Multiplication census of the flows above: the c accumulation
	// ((s−1)·d), the two mask products, the c'/g masking (2d) and the
	// QX product (s²·d).
	params.Obs.Add(obsv.OpFieldMul, int64((s-1)*d+2+2*d+s*s*d))

	return &Bob{params: params, b: b, r2: r2, r3: r3},
		&BobMessage{QX: qx, CPrime: cPrime, G: g}, nil
}

// AliceRespond computes Alice's reply for her vector v and offset alpha.
// len(v) must equal Bob's input length; alpha occupies the appended
// dimension (the framework's ρ_j).
func AliceRespond(params Params, msg *BobMessage, v []*big.Int, alpha *big.Int) (*AliceReply, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if err := msg.Validate(params); err != nil {
		return nil, err
	}
	P := params.P
	s := len(msg.QX)
	d := len(msg.QX[0])
	if len(v)+1 != d {
		return nil, fmt.Errorf("dotprod: dimension mismatch (d=%d, len(v)=%d)", d, len(v))
	}

	vPrime := make([]*big.Int, d)
	for j, vj := range v {
		vPrime[j] = new(big.Int).Mod(vj, P)
	}
	vPrime[d-1] = new(big.Int).Mod(alpha, P)

	// z = Σ_i (QX·v')_i: per-row partial sums in parallel, combined
	// serially in row order so the result is worker-count independent.
	rows := make([]*big.Int, s)
	_ = kernel.Map(context.Background(), params.Workers, s, func(i int) error {
		acc := new(big.Int)
		for j := 0; j < d; j++ {
			acc.Add(acc, new(big.Int).Mul(msg.QX[i][j], vPrime[j]))
		}
		rows[i] = acc
		return nil
	})
	z := new(big.Int)
	for _, row := range rows {
		z.Add(z, row)
	}
	z.Mod(z, P)

	a := new(big.Int).Sub(z, dot(msg.CPrime, vPrime, P))
	a.Mod(a, P)
	h := dot(msg.G, vPrime, P)
	// z is s·d multiplications, the two dot products d each.
	params.Obs.Add(obsv.OpFieldMul, int64(s*d+2*d))
	return &AliceReply{A: a, H: h}, nil
}

// Finish recovers Bob's output β = w·v + α mod P from Alice's reply.
// A Bob state is single use.
func (bob *Bob) Finish(reply *AliceReply) (*big.Int, error) {
	if bob.done {
		return nil, fmt.Errorf("dotprod: Finish called twice")
	}
	if err := reply.Validate(bob.params); err != nil {
		return nil, err
	}
	bob.done = true
	P := bob.params.P
	// β = (a + h·R2/R3) / b.
	r3inv := new(big.Int).ModInverse(bob.r3, P)
	if r3inv == nil {
		return nil, fmt.Errorf("dotprod: R3 not invertible")
	}
	binv := new(big.Int).ModInverse(bob.b, P)
	if binv == nil {
		return nil, fmt.Errorf("dotprod: b not invertible")
	}
	bob.params.Obs.Add(obsv.OpFieldMul, 3)
	beta := new(big.Int).Mul(reply.H, bob.r2)
	beta.Mul(beta, r3inv)
	beta.Add(beta, reply.A)
	beta.Mul(beta, binv)
	return beta.Mod(beta, P), nil
}

// Compute runs the whole protocol in-process: returns w·v + α mod P.
func Compute(params Params, w, v []*big.Int, alpha *big.Int, rng io.Reader) (*big.Int, error) {
	bob, msg, err := NewBob(params, w, rng)
	if err != nil {
		return nil, err
	}
	reply, err := AliceRespond(params, msg, v, alpha)
	if err != nil {
		return nil, err
	}
	return bob.Finish(reply)
}

func zeroVec(d int) []*big.Int {
	v := make([]*big.Int, d)
	for i := range v {
		v[i] = new(big.Int)
	}
	return v
}

func dot(a, b []*big.Int, p *big.Int) *big.Int {
	acc := new(big.Int)
	for i := range a {
		acc.Add(acc, new(big.Int).Mul(a[i], b[i]))
	}
	return acc.Mod(acc, p)
}
