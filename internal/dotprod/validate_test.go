package dotprod

import (
	"math/big"
	"strings"
	"testing"

	"groupranking/internal/fixedbig"
)

// These tests pin the receive-boundary validation: over a real network
// both flows are attacker-controlled, so every structural and range
// violation must be rejected with a descriptive error before any of the
// message's contents are used.

func validateFixture(t *testing.T) (Params, *Bob, *BobMessage) {
	t.Helper()
	p, ok := new(big.Int).SetString("1000003", 10)
	if !ok {
		t.Fatal("bad prime literal")
	}
	params := DefaultSRange(p)
	w := []*big.Int{big.NewInt(3), big.NewInt(5), big.NewInt(7)}
	bob, msg, err := NewBob(params, w, fixedbig.NewDRBG("dotprod-validate"))
	if err != nil {
		t.Fatal(err)
	}
	return params, bob, msg
}

func TestBobMessageValidate(t *testing.T) {
	params, _, good := validateFixture(t)
	if err := good.Validate(params); err != nil {
		t.Fatalf("honest flow rejected: %v", err)
	}
	corrupt := func(name string, mutate func(m *BobMessage), want string) {
		t.Run(name, func(t *testing.T) {
			_, _, msg := validateFixture(t)
			mutate(msg)
			err := msg.Validate(params)
			if err == nil {
				t.Fatal("corrupted flow accepted")
			}
			if want != "" && !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		})
	}
	corrupt("nil message", func(m *BobMessage) { *m = BobMessage{} }, "outside")
	corrupt("s too large", func(m *BobMessage) {
		for len(m.QX) <= params.SMax {
			m.QX = append(m.QX, m.QX[0])
		}
	}, "outside")
	corrupt("ragged matrix", func(m *BobMessage) { m.QX[1] = m.QX[1][:1] }, "ragged")
	corrupt("cprime length", func(m *BobMessage) { m.CPrime = m.CPrime[:1] }, "mismatch")
	corrupt("g length", func(m *BobMessage) { m.G = append(m.G, big.NewInt(1)) }, "mismatch")
	corrupt("nil element", func(m *BobMessage) { m.QX[0][0] = nil }, "missing")
	corrupt("negative element", func(m *BobMessage) { m.CPrime[0] = big.NewInt(-1) }, "out of range")
	corrupt("unreduced element", func(m *BobMessage) { m.G[0] = new(big.Int).Set(params.P) }, "out of range")

	var missing *BobMessage
	if err := missing.Validate(params); err == nil {
		t.Error("nil pointer accepted")
	}
}

func TestAliceReplyValidate(t *testing.T) {
	params, bob, msg := validateFixture(t)
	v := []*big.Int{big.NewInt(2), big.NewInt(4), big.NewInt(6)}
	reply, err := AliceRespond(params, msg, v, big.NewInt(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := reply.Validate(params); err != nil {
		t.Fatalf("honest reply rejected: %v", err)
	}
	bad := []*AliceReply{
		nil,
		{A: nil, H: big.NewInt(1)},
		{A: big.NewInt(1), H: nil},
		{A: big.NewInt(-2), H: big.NewInt(1)},
		{A: new(big.Int).Set(params.P), H: big.NewInt(1)},
	}
	for i, r := range bad {
		if err := r.Validate(params); err == nil {
			t.Errorf("bad reply %d accepted", i)
		}
	}
	// Finish must reject an out-of-range reply instead of computing with
	// it — and must stay usable for the honest reply afterwards.
	if _, err := bob.Finish(&AliceReply{A: new(big.Int).Set(params.P), H: big.NewInt(0)}); err == nil {
		t.Error("Finish accepted an unreduced reply")
	}
	if _, err := bob.Finish(reply); err != nil {
		t.Errorf("Finish rejected the honest reply after a bad one: %v", err)
	}
}
