package elgamal

import (
	"fmt"
	"io"

	"groupranking/internal/group"
	"groupranking/internal/wirecodec"
)

// Binary wire form of a ciphertext: the two structural element
// encodings C ‖ C1 (group.AppendElementWire), no framing of its own.
// Like the gob form it replaces, decoding needs no group context and
// checks structure only; the protocol layer validates membership of
// both components via group.Validate before using a foreign
// ciphertext.

// AppendBinary appends the wire form to dst, implementing the
// append-style serialisation convention alongside MarshalBinary.
func (ct Ciphertext) AppendBinary(dst []byte) ([]byte, error) {
	dst, err := group.AppendElementWire(dst, ct.C)
	if err != nil {
		return nil, fmt.Errorf("elgamal: ciphertext C: %w", err)
	}
	dst, err = group.AppendElementWire(dst, ct.C1)
	if err != nil {
		return nil, fmt.Errorf("elgamal: ciphertext C1: %w", err)
	}
	return dst, nil
}

// MarshalBinary implements encoding.BinaryMarshaler. Gob also picks
// this up, so nested ciphertext fields inside gob-encoded structures
// ship the compact binary form instead of a reflected struct walk.
func (ct Ciphertext) MarshalBinary() ([]byte, error) {
	return ct.AppendBinary(make([]byte, 0, 2*48))
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Malformed
// input is an error, never a panic.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	c, n, err := group.DecodeElementWire(data)
	if err != nil {
		return fmt.Errorf("elgamal: ciphertext C: %w", err)
	}
	c1, m, err := group.DecodeElementWire(data[n:])
	if err != nil {
		return fmt.Errorf("elgamal: ciphertext C1: %w", err)
	}
	if n+m != len(data) {
		return fmt.Errorf("elgamal: %d trailing bytes after ciphertext", len(data)-n-m)
	}
	ct.C, ct.C1 = c, c1
	return nil
}

// WriteTo implements io.WriterTo.
func (ct Ciphertext) WriteTo(w io.Writer) (int64, error) {
	b, err := ct.MarshalBinary()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// ReadCiphertext parses one ciphertext from a wirecodec Reader; errors
// latch on the Reader.
func ReadCiphertext(r *wirecodec.Reader) Ciphertext {
	return Ciphertext{C: r.Element(), C1: r.Element()}
}

// AppendCiphertextWire appends ct's wire form to dst; protocol-message
// codecs embed ciphertexts through it.
func AppendCiphertextWire(dst []byte, ct Ciphertext) ([]byte, error) {
	return ct.AppendBinary(dst)
}

func init() {
	wirecodec.Register(wirecodec.IDRangeCrypto, "elgamal ciphertext",
		[]any{Ciphertext{}},
		func(dst []byte, v any) ([]byte, error) {
			return v.(Ciphertext).AppendBinary(dst)
		},
		func(data []byte) (any, error) {
			var ct Ciphertext
			if err := ct.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return ct, nil
		})
}

// enforce the serialisation interfaces at compile time
var (
	_ io.WriterTo = Ciphertext{}
	_ interface {
		MarshalBinary() ([]byte, error)
	} = Ciphertext{}
	_ interface {
		UnmarshalBinary([]byte) error
	} = (*Ciphertext)(nil)
)
