package elgamal

import (
	"bytes"
	"math/big"
	"testing"

	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/wirecodec"
)

func wireSchemes(t *testing.T) []*Scheme {
	t.Helper()
	dl, err := group.ToyDL256()
	if err != nil {
		t.Fatalf("ToyDL256: %v", err)
	}
	return []*Scheme{NewScheme(dl), NewScheme(group.Secp160r1())}
}

func sampleCiphertext(t *testing.T, s *Scheme) Ciphertext {
	t.Helper()
	rng := fixedbig.NewDRBG("elgamal-wire-test-" + s.Group().Name())
	kp, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	ct, err := s.EncryptExp(kp.Y, big.NewInt(3), rng)
	if err != nil {
		t.Fatalf("EncryptExp: %v", err)
	}
	return ct
}

func TestCiphertextBinaryRoundtrip(t *testing.T) {
	for _, s := range wireSchemes(t) {
		g := s.Group()
		for _, ct := range []Ciphertext{
			sampleCiphertext(t, s),
			{C: g.Identity(), C1: g.Identity()},
		} {
			b, err := ct.MarshalBinary()
			if err != nil {
				t.Fatalf("%s: MarshalBinary: %v", g.Name(), err)
			}
			var got Ciphertext
			if err := got.UnmarshalBinary(b); err != nil {
				t.Fatalf("%s: UnmarshalBinary: %v", g.Name(), err)
			}
			if !g.Equal(got.C, ct.C) || !g.Equal(got.C1, ct.C1) {
				t.Fatalf("%s: ciphertext changed across roundtrip", g.Name())
			}

			var buf bytes.Buffer
			if n, err := ct.WriteTo(&buf); err != nil || int(n) != len(b) {
				t.Fatalf("%s: WriteTo wrote %d (%v), want %d", g.Name(), n, err, len(b))
			}

			// The wirecodec frame path must roundtrip too.
			fb, err := wirecodec.Marshal(ct)
			if err != nil {
				t.Fatalf("%s: frame marshal: %v", g.Name(), err)
			}
			fv, err := wirecodec.Unmarshal(fb)
			if err != nil {
				t.Fatalf("%s: frame unmarshal: %v", g.Name(), err)
			}
			fct := fv.(Ciphertext)
			if !g.Equal(fct.C, ct.C) || !g.Equal(fct.C1, ct.C1) {
				t.Fatalf("%s: framed ciphertext changed", g.Name())
			}
		}
	}
}

func TestCiphertextUnmarshalRejectsGarbage(t *testing.T) {
	s := wireSchemes(t)[0]
	good, err := sampleCiphertext(t, s).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var ct Ciphertext
	for i := 0; i < len(good); i++ {
		if err := ct.UnmarshalBinary(good[:i]); err == nil {
			t.Fatalf("accepted %d-byte prefix", i)
		}
	}
	if err := ct.UnmarshalBinary(append(append([]byte(nil), good...), 0xEE)); err == nil {
		t.Fatal("accepted trailing garbage")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0x7F
	if err := ct.UnmarshalBinary(bad); err == nil {
		t.Fatal("accepted unknown element tag")
	}
}

// TestAppendEncodeZeroAllocs pins the hot-path contract: encoding a
// ciphertext into a reused buffer allocates nothing. The old Encode
// built two intermediate slices per ciphertext and re-copied both
// through a defensive pad; per-bit encryption batches serialise
// O(l·n²) ciphertexts per run, so the copies were pure overhead.
func TestAppendEncodeZeroAllocs(t *testing.T) {
	for _, s := range wireSchemes(t) {
		ct := sampleCiphertext(t, s)
		buf := make([]byte, 0, s.EncodedLen())
		allocs := testing.AllocsPerRun(200, func() {
			buf = s.AppendEncode(buf[:0], ct)
		})
		if allocs != 0 {
			t.Errorf("%s: AppendEncode allocates %.1f times per ciphertext, want 0",
				s.Group().Name(), allocs)
		}
		if len(buf) != s.EncodedLen() {
			t.Errorf("%s: AppendEncode wrote %d bytes, want %d",
				s.Group().Name(), len(buf), s.EncodedLen())
		}
		if !bytes.Equal(buf, s.Encode(ct)) {
			t.Errorf("%s: AppendEncode disagrees with Encode", s.Group().Name())
		}
	}
}

func FuzzCiphertextUnmarshal(f *testing.F) {
	dl, err := group.ToyDL256()
	if err != nil {
		f.Fatal(err)
	}
	s := NewScheme(dl)
	rng := fixedbig.NewDRBG("elgamal-fuzz")
	kp, _ := s.GenerateKey(rng)
	ct, _ := s.EncryptExp(kp.Y, big.NewInt(1), rng)
	if seed, err := ct.MarshalBinary(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x00, 0x01, 0x09, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Ciphertext
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		b, err := out.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted ciphertext failed to re-encode: %v", err)
		}
		var again Ciphertext
		if err := again.UnmarshalBinary(b); err != nil {
			t.Fatalf("re-encoded ciphertext failed to decode: %v", err)
		}
	})
}
