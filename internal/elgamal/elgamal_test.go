package elgamal

import (
	"math/big"
	"testing"
	"testing/quick"

	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
)

func testScheme(t *testing.T) (*Scheme, *fixedbig.DRBG) {
	t.Helper()
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("elgamal-group"))
	if err != nil {
		t.Fatalf("GenerateDLGroup: %v", err)
	}
	return NewScheme(g), fixedbig.NewDRBG("elgamal-rng")
}

func TestStandardEncryptDecrypt(t *testing.T) {
	s, rng := testScheme(t)
	kp, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		k, err := s.Group().RandomScalar(rng)
		if err != nil {
			t.Fatal(err)
		}
		m := group.ExpGen(s.Group(), k)
		ct, err := s.Encrypt(kp.Y, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Group().Equal(s.Decrypt(kp.X, ct), m) {
			t.Fatal("decrypt mismatch")
		}
	}
}

func TestExpEncryptIsZero(t *testing.T) {
	s, rng := testScheme(t)
	kp, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := s.EncryptExp(kp.Y, big.NewInt(0), rng)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsZero(kp.X, zero) {
		t.Error("E(0) did not decrypt to zero")
	}
	one, err := s.EncryptExp(kp.Y, big.NewInt(1), rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.IsZero(kp.X, one) {
		t.Error("E(1) decrypted to zero")
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	s, rng := testScheme(t)
	kp, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b int16) bool {
		ca, err1 := s.EncryptExp(kp.Y, big.NewInt(int64(a)), rng)
		cb, err2 := s.EncryptExp(kp.Y, big.NewInt(int64(b)), rng)
		if err1 != nil || err2 != nil {
			return false
		}
		sum := s.Add(ca, cb)
		want := group.ExpGen(s.Group(), big.NewInt(int64(a)+int64(b)))
		return s.Group().Equal(s.RecoverExp(kp.X, sum), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSubNegScalarMul(t *testing.T) {
	s, rng := testScheme(t)
	kp, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	enc := func(v int64) Ciphertext {
		ct, err := s.EncryptExp(kp.Y, big.NewInt(v), rng)
		if err != nil {
			t.Fatal(err)
		}
		return ct
	}
	check := func(name string, ct Ciphertext, want int64) {
		t.Helper()
		got := s.RecoverExp(kp.X, ct)
		if !s.Group().Equal(got, group.ExpGen(s.Group(), big.NewInt(want))) {
			t.Errorf("%s: plaintext is not %d", name, want)
		}
	}
	check("sub", s.Sub(enc(9), enc(4)), 5)
	check("neg", s.Neg(enc(7)), -7)
	check("scalarmul", s.ScalarMul(enc(6), big.NewInt(7)), 42)
	check("addplain", s.AddPlain(enc(3), big.NewInt(11)), 14)
	check("xor0-0", s.Sub(s.Add(enc(0), enc(0)), s.ScalarMul(enc(0), big.NewInt(0))), 0)
}

func TestXORGadget(t *testing.T) {
	// γ = a + b − 2ab where a is a known bit and b is encrypted: the exact
	// gadget step 7 of Fig. 1 computes.
	s, rng := testScheme(t)
	kp, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []int64{0, 1} {
		for _, b := range []int64{0, 1} {
			eb, err := s.EncryptExp(kp.Y, big.NewInt(b), rng)
			if err != nil {
				t.Fatal(err)
			}
			// E(γ) = E(a) ⊕-gadget: a + b − 2ab = a + (1−2a)·b.
			coeff := big.NewInt(1 - 2*a)
			eGamma := s.AddPlain(s.ScalarMul(eb, coeff), big.NewInt(a))
			want := a ^ b
			if got := s.IsZero(kp.X, eGamma); got != (want == 0) {
				t.Errorf("xor(%d,%d): zero-test mismatch", a, b)
			}
		}
	}
}

func TestJointKeyLayeredDecryption(t *testing.T) {
	s, rng := testScheme(t)
	const n = 5
	keys := make([]*KeyPair, n)
	shares := make([]group.Element, n)
	for i := range keys {
		kp, err := s.GenerateKey(rng)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = kp
		shares[i] = kp.Y
	}
	joint := s.JointPublicKey(shares)
	ct, err := s.EncryptExp(joint, big.NewInt(0), rng)
	if err != nil {
		t.Fatal(err)
	}
	nz, err := s.EncryptExp(joint, big.NewInt(3), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Strip layers one by one in arbitrary order.
	for _, i := range []int{2, 0, 4, 1} {
		ct = s.PartialDecrypt(keys[i].X, ct)
		nz = s.PartialDecrypt(keys[i].X, nz)
	}
	// The final holder decrypts with her own share.
	if !s.IsZero(keys[3].X, ct) {
		t.Error("joint-key zero ciphertext did not decrypt to zero")
	}
	if s.IsZero(keys[3].X, nz) {
		t.Error("joint-key non-zero ciphertext decrypted to zero")
	}
}

func TestJointKeyEqualsSumKey(t *testing.T) {
	s, rng := testScheme(t)
	k1, _ := s.GenerateKey(rng)
	k2, _ := s.GenerateKey(rng)
	joint := s.JointPublicKey([]group.Element{k1.Y, k2.Y})
	xSum := new(big.Int).Add(k1.X, k2.X)
	ct, err := s.EncryptExp(joint, big.NewInt(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.DecryptSmall(xSum, ct, 10)
	if !ok || got != 5 {
		t.Errorf("joint decryption with summed key: got %d ok=%v, want 5", got, ok)
	}
}

func TestReRandomizePreservesPlaintextChangesCiphertext(t *testing.T) {
	s, rng := testScheme(t)
	kp, _ := s.GenerateKey(rng)
	ct, err := s.EncryptExp(kp.Y, big.NewInt(7), rng)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := s.ReRandomize(kp.Y, ct, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Group().Equal(rr.C, ct.C) && s.Group().Equal(rr.C1, ct.C1) {
		t.Error("re-randomisation left the ciphertext unchanged")
	}
	got, ok := s.DecryptSmall(kp.X, rr, 10)
	if !ok || got != 7 {
		t.Errorf("re-randomised plaintext: got %d ok=%v, want 7", got, ok)
	}
}

func TestExponentBlindFixesZeroRandomisesNonZero(t *testing.T) {
	s, rng := testScheme(t)
	kp, _ := s.GenerateKey(rng)
	zero, err := s.EncryptExp(kp.Y, big.NewInt(0), rng)
	if err != nil {
		t.Fatal(err)
	}
	bz, err := s.ExponentBlind(zero, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsZero(kp.X, bz) {
		t.Error("blinding broke the zero plaintext")
	}
	nz, err := s.EncryptExp(kp.Y, big.NewInt(3), rng)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := s.ExponentBlind(nz, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.IsZero(kp.X, bn) {
		t.Error("blinding zeroed a non-zero plaintext")
	}
	// The blinded plaintext should no longer be 3 (overwhelming probability).
	if got, ok := s.DecryptSmall(kp.X, bn, 50); ok && got == 3 {
		t.Error("blinding left the plaintext exponent recognisable")
	}
}

func TestEncryptionsOfSamePlaintextDiffer(t *testing.T) {
	// IND-CPA structural smoke test: fresh encryptions of the same message
	// must never repeat.
	s, rng := testScheme(t)
	kp, _ := s.GenerateKey(rng)
	a, err := s.EncryptExp(kp.Y, big.NewInt(1), rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.EncryptExp(kp.Y, big.NewInt(1), rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Group().Equal(a.C, b.C) || s.Group().Equal(a.C1, b.C1) {
		t.Error("two encryptions of the same plaintext share components")
	}
}

func TestDecryptSmallNegative(t *testing.T) {
	s, rng := testScheme(t)
	kp, _ := s.GenerateKey(rng)
	ct, err := s.EncryptExp(kp.Y, big.NewInt(-4), rng)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.DecryptSmall(kp.X, ct, 10)
	if !ok || got != -4 {
		t.Errorf("got %d ok=%v, want -4", got, ok)
	}
	if _, ok := s.DecryptSmall(kp.X, ct, 2); ok {
		t.Error("bound 2 should not reach -4")
	}
}

func TestEncodeLength(t *testing.T) {
	s, rng := testScheme(t)
	kp, _ := s.GenerateKey(rng)
	ct, err := s.EncryptExp(kp.Y, big.NewInt(9), rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Encode(ct)); got != s.EncodedLen() {
		t.Errorf("encoded length %d, want %d", got, s.EncodedLen())
	}
}

func TestSchemeOverEllipticCurve(t *testing.T) {
	// The whole stack must work identically over an EC group.
	s := NewScheme(group.Secp160r1())
	rng := fixedbig.NewDRBG("elgamal-ec")
	kp, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s.EncryptExp(kp.Y, big.NewInt(0), rng)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsZero(kp.X, ct) {
		t.Error("EC zero ciphertext did not decrypt to zero")
	}
	sum := s.Add(ct, ct)
	if !s.IsZero(kp.X, sum) {
		t.Error("EC homomorphic sum of zeros is not zero")
	}
	nz, err := s.EncryptExp(kp.Y, big.NewInt(2), rng)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s.DecryptSmall(kp.X, nz, 5); !ok || got != 2 {
		t.Errorf("EC DecryptSmall: got %d ok=%v, want 2", got, ok)
	}
}

func TestStandardElGamalOverEC(t *testing.T) {
	s := NewScheme(group.Secp160r1())
	rng := fixedbig.NewDRBG("std-ec")
	kp, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	k, err := s.Group().RandomScalar(rng)
	if err != nil {
		t.Fatal(err)
	}
	m := group.ExpGen(s.Group(), k)
	ct, err := s.Encrypt(kp.Y, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Group().Equal(s.Decrypt(kp.X, ct), m) {
		t.Error("EC standard decryption mismatch")
	}
}

func TestEncodeIncludesBothComponents(t *testing.T) {
	s, rng := testScheme(t)
	kp, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.EncryptExp(kp.Y, big.NewInt(1), rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.EncryptExp(kp.Y, big.NewInt(1), rng)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := s.Encode(a), s.Encode(b)
	if len(ea) != len(eb) {
		t.Fatal("encodings of equal-size ciphertexts differ in length")
	}
	same := true
	for i := range ea {
		if ea[i] != eb[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct ciphertexts encoded identically")
	}
}

func TestJointPublicKeyEmptyAndSingle(t *testing.T) {
	s, rng := testScheme(t)
	if !s.Group().IsIdentity(s.JointPublicKey(nil)) {
		t.Error("empty joint key should be the identity")
	}
	kp, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	single := s.JointPublicKey([]group.Element{kp.Y})
	if !s.Group().Equal(single, kp.Y) {
		t.Error("single-share joint key should equal the share")
	}
}

func TestDecryptSmallZeroBound(t *testing.T) {
	s, rng := testScheme(t)
	kp, err := s.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s.EncryptExp(kp.Y, big.NewInt(0), rng)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.DecryptSmall(kp.X, ct, 0)
	if !ok || got != 0 {
		t.Errorf("bound 0 must still find m=0: got %d ok=%v", got, ok)
	}
}
