// Package elgamal implements the ElGamal cryptosystem over any
// group.Group, in both its standard form and the paper's "modified"
// exponent form E(m) = (g^m·y^r, g^r), which is additively homomorphic
// (Section IV-D). It also provides the distributed-key operations the
// unlinkable comparison phase relies on: joint public keys, layered
// partial decryption, ciphertext re-randomisation and exponent blinding
// (c, c') → (c^r, c'^r), which randomises a non-zero plaintext exponent
// while fixing zero.
package elgamal

import (
	"fmt"
	"io"
	"math/big"

	"groupranking/internal/group"
	"groupranking/internal/obsv"
)

// Ciphertext is an ElGamal ciphertext (C, C1) with C = M·y^r (or
// g^m·y^r in exponent form) and C1 = g^r.
type Ciphertext struct {
	C  group.Element
	C1 group.Element
}

// KeyPair holds one party's ElGamal key share.
type KeyPair struct {
	X *big.Int      // private key
	Y group.Element // public key g^x
}

// Scheme binds the cryptosystem to a concrete group.
type Scheme struct {
	g group.Group
	// pkTab is an optional fixed-base table for one distinguished public
	// key (the joint key y in the unlinkable sort, fixed for a whole
	// run). See WithPrecomp.
	pkTab *group.FixedBaseTable
}

// NewScheme returns an ElGamal scheme over g.
func NewScheme(g group.Group) *Scheme { return &Scheme{g: g} }

// Group exposes the underlying group.
func (s *Scheme) Group() group.Group { return s.g }

// WithPrecomp returns a scheme that evaluates pk^r through a fixed-base
// comb table whenever an encryption or re-randomisation uses exactly
// this public key. The protocol's joint key y masks every one of the
// O(l·n²) ciphertexts a run produces, so one table build (a few hundred
// group operations) amortises immediately. Other public keys fall back
// to the plain exponentiation path, and the observability census is
// unchanged: a table hit charges the same single OpGroupExp the Exp
// call it replaces would have.
func (s *Scheme) WithPrecomp(pk group.Element) *Scheme {
	return &Scheme{g: s.g, pkTab: group.NewFixedBaseTable(s.g, pk)}
}

// expPK computes pk^r, through the precomputed table when it was built
// for this pk.
func (s *Scheme) expPK(pk group.Element, r *big.Int) group.Element {
	if s.pkTab != nil && s.g.Equal(s.pkTab.Base(), pk) {
		// The table evaluates on the raw group; charge the one
		// exponentiation the counting wrapper would have recorded.
		obsv.PartyOf(s.g).Add(obsv.OpGroupExp, 1)
		return s.pkTab.Exp(r)
	}
	return s.g.Exp(pk, r)
}

// GenerateKey samples a fresh key pair.
func (s *Scheme) GenerateKey(rng io.Reader) (*KeyPair, error) {
	x, err := s.g.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("elgamal: generating key: %w", err)
	}
	return &KeyPair{X: x, Y: group.ExpGen(s.g, x)}, nil
}

// JointPublicKey combines the parties' public key shares into the joint
// key y = Π y_i whose private key x = Σ x_i is known to nobody.
func (s *Scheme) JointPublicKey(shares []group.Element) group.Element {
	y := s.g.Identity()
	for _, yi := range shares {
		y = s.g.Op(y, yi)
	}
	return y
}

// Encrypt is standard ElGamal encryption of a group element M.
func (s *Scheme) Encrypt(pk group.Element, m group.Element, rng io.Reader) (Ciphertext, error) {
	r, err := s.g.RandomScalar(rng)
	if err != nil {
		return Ciphertext{}, fmt.Errorf("elgamal: encrypting: %w", err)
	}
	return s.EncryptR(pk, m, r), nil
}

// EncryptR encrypts with caller-supplied randomness r. The parallel
// kernels pre-draw every scalar serially (preserving the deterministic
// DRBG draw order the test suite pins down) and then fan the pure
// arithmetic out across workers through this entry point.
func (s *Scheme) EncryptR(pk group.Element, m group.Element, r *big.Int) Ciphertext {
	obsv.PartyOf(s.g).Add(obsv.OpEncrypt, 1)
	return Ciphertext{
		C:  s.g.Op(m, s.expPK(pk, r)),
		C1: group.ExpGen(s.g, r),
	}
}

// Decrypt is standard ElGamal decryption: M = C / C1^x.
func (s *Scheme) Decrypt(x *big.Int, ct Ciphertext) group.Element {
	obsv.PartyOf(s.g).Add(obsv.OpDecrypt, 1)
	return s.g.Op(ct.C, s.g.Inv(s.g.Exp(ct.C1, x)))
}

// encodeExp maps an integer into the group's exponent encoding g^m. The
// values the protocol encodes hottest — bits and the +1 of the γ
// complement — short-circuit to the identity and the generator, which
// both removes an exponentiation from every bitwise encryption and
// makes the scheme's exponentiation count independent of the plaintext
// bit pattern (so the cost model can predict it exactly).
func (s *Scheme) encodeExp(m *big.Int) group.Element {
	switch {
	case m.Sign() == 0:
		return s.g.Identity()
	case m.Cmp(oneInt) == 0:
		return s.g.Generator()
	}
	return group.ExpGen(s.g, m)
}

var oneInt = big.NewInt(1)

// EncryptExp encrypts an integer in the exponent: E(m) = (g^m·y^r, g^r).
// Decryption recovers g^m only; the framework never needs m itself, only
// whether m = 0 (Section IV-D).
func (s *Scheme) EncryptExp(pk group.Element, m *big.Int, rng io.Reader) (Ciphertext, error) {
	return s.Encrypt(pk, s.encodeExp(m), rng)
}

// EncryptExpR is EncryptExp with caller-supplied randomness.
func (s *Scheme) EncryptExpR(pk group.Element, m, r *big.Int) Ciphertext {
	return s.EncryptR(pk, s.encodeExp(m), r)
}

// Add homomorphically adds the plaintext exponents of two ciphertexts.
func (s *Scheme) Add(a, b Ciphertext) Ciphertext {
	return Ciphertext{C: s.g.Op(a.C, b.C), C1: s.g.Op(a.C1, b.C1)}
}

// Neg negates the plaintext exponent.
func (s *Scheme) Neg(a Ciphertext) Ciphertext {
	return Ciphertext{C: s.g.Inv(a.C), C1: s.g.Inv(a.C1)}
}

// Sub homomorphically subtracts plaintext exponents.
func (s *Scheme) Sub(a, b Ciphertext) Ciphertext { return s.Add(a, s.Neg(b)) }

// ScalarMul multiplies the plaintext exponent by the integer k.
func (s *Scheme) ScalarMul(a Ciphertext, k *big.Int) Ciphertext {
	return Ciphertext{C: s.g.Exp(a.C, k), C1: s.g.Exp(a.C1, k)}
}

// AddPlain adds a public integer to the plaintext exponent without fresh
// randomness (the caller re-randomises separately when needed). Adding
// zero is the identity and costs nothing.
func (s *Scheme) AddPlain(a Ciphertext, m *big.Int) Ciphertext {
	if m.Sign() == 0 {
		return a
	}
	return Ciphertext{C: s.g.Op(a.C, s.encodeExp(m)), C1: a.C1}
}

// ReRandomize refreshes the randomness of a ciphertext under pk by adding
// an encryption of zero, making the result unlinkable to the input.
func (s *Scheme) ReRandomize(pk group.Element, a Ciphertext, rng io.Reader) (Ciphertext, error) {
	r, err := s.g.RandomScalar(rng)
	if err != nil {
		return Ciphertext{}, fmt.Errorf("elgamal: re-randomising: %w", err)
	}
	return s.ReRandomizeR(pk, a, r), nil
}

// ReRandomizeR is ReRandomize with caller-supplied randomness.
func (s *Scheme) ReRandomizeR(pk group.Element, a Ciphertext, r *big.Int) Ciphertext {
	return s.Add(a, s.EncryptExpR(pk, big.NewInt(0), r))
}

// ExponentBlind raises both components to a random non-zero power:
// (c, c') → (c^r, c'^r). For an exponent ciphertext of plaintext m this
// yields a ciphertext of r·m — identically zero stays zero, anything else
// becomes a uniformly random non-zero exponent. This is the randomisation
// used in step 8 of Fig. 1 to hide non-zero τ values.
func (s *Scheme) ExponentBlind(a Ciphertext, rng io.Reader) (Ciphertext, error) {
	r, err := s.g.RandomScalar(rng)
	if err != nil {
		return Ciphertext{}, fmt.Errorf("elgamal: blinding: %w", err)
	}
	return s.ExponentBlindR(a, r), nil
}

// ExponentBlindR is ExponentBlind with a caller-supplied blinding
// scalar.
func (s *Scheme) ExponentBlindR(a Ciphertext, r *big.Int) Ciphertext {
	return s.ScalarMul(a, r)
}

// PartialDecrypt strips one key layer: C → C / C1^x. After every holder
// of a key share has applied it, the remaining C equals g^m.
func (s *Scheme) PartialDecrypt(x *big.Int, a Ciphertext) Ciphertext {
	obsv.PartyOf(s.g).Add(obsv.OpDecrypt, 1)
	return Ciphertext{
		C:  s.g.Op(a.C, s.g.Inv(s.g.Exp(a.C1, x))),
		C1: a.C1,
	}
}

// RecoverExp decrypts an exponent ciphertext under the (possibly joint)
// private key x, returning g^m.
func (s *Scheme) RecoverExp(x *big.Int, a Ciphertext) group.Element {
	return s.Decrypt(x, a)
}

// IsZero reports whether the exponent plaintext is zero, i.e. g^m = 1.
func (s *Scheme) IsZero(x *big.Int, a Ciphertext) bool {
	return s.g.IsIdentity(s.RecoverExp(x, a))
}

// DecryptSmall brute-forces g^m for |m| ≤ bound. It exists for tests and
// debugging; the protocol itself only ever tests m = 0.
func (s *Scheme) DecryptSmall(x *big.Int, a Ciphertext, bound int64) (int64, bool) {
	gm := s.RecoverExp(x, a)
	acc := s.g.Identity()
	for m := int64(0); m <= bound; m++ {
		if s.g.Equal(acc, gm) {
			return m, true
		}
		acc = s.g.Op(acc, s.g.Generator())
	}
	acc = s.g.Inv(s.g.Generator())
	for m := int64(-1); m >= -bound; m-- {
		if s.g.Equal(acc, gm) {
			return m, true
		}
		acc = s.g.Op(acc, s.g.Inv(s.g.Generator()))
	}
	return 0, false
}

// EncodedLen returns the serialised ciphertext size in bytes; it is the
// unit the communication cost model charges per ciphertext.
func (s *Scheme) EncodedLen() int { return 2 * s.g.ElementLen() }

// Encode serialises a ciphertext as C ‖ C1, each component exactly
// ElementLen bytes (the identity included — every Group guarantees a
// fixed-width canonical encoding).
func (s *Scheme) Encode(a Ciphertext) []byte {
	return s.AppendEncode(make([]byte, 0, s.EncodedLen()), a)
}

// AppendEncode appends the canonical C ‖ C1 serialisation to dst and
// returns the extended slice. It is the hot-path form of Encode: the
// old implementation copied each component twice (Encode, then a
// defensive re-pad); this writes both straight into the caller's
// buffer, and a reused buffer amortises to zero allocations per
// ciphertext — pinned by TestAppendEncodeZeroAllocs.
func (s *Scheme) AppendEncode(dst []byte, a Ciphertext) []byte {
	dst = s.g.AppendElement(dst, a.C)
	return s.g.AppendElement(dst, a.C1)
}
