package elgamal

import (
	"strings"
	"testing"
)

// TestPadToOversizedPanicsDescriptively pins the padTo guard: an
// encoding longer than ElementLen used to slice with a negative index
// and panic with an opaque runtime error; it must now report the
// broken Group implementation by name.
func TestPadToOversizedPanicsDescriptively(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("padTo accepted an oversized encoding")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "exceeds ElementLen") {
			t.Fatalf("padTo panicked with %v, want a descriptive message", r)
		}
	}()
	padTo(make([]byte, 5), 3)
}

func TestPadToPadsAndPassesThrough(t *testing.T) {
	if got := padTo([]byte{1, 2}, 4); len(got) != 4 || got[0] != 0 || got[1] != 0 || got[2] != 1 || got[3] != 2 {
		t.Fatalf("padTo([1 2], 4) = %v", got)
	}
	same := []byte{9, 8, 7}
	if got := padTo(same, 3); &got[0] != &same[0] {
		t.Fatal("padTo copied an already-sized slice")
	}
}
