package groupranking

import (
	"context"
	"strings"
	"testing"
	"time"
)

// The shared option resolver backs every public entry point; these
// tests pin its defaulting and its K-style validation errors.

func TestSortOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts SortOptions
		want string
	}{
		{"bits too large", SortOptions{Bits: 65}, "outside [1, 64]"},
		{"bits negative", SortOptions{Bits: -3}, "outside [1, 64]"},
		{"negative workers", SortOptions{Bits: 8, Runtime: Runtime{Workers: -1}}, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnlinkableSort(context.Background(), []uint64{3, 1, 2}, tc.opts)
			if err == nil {
				t.Fatal("invalid options accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSortOptionsDefaults(t *testing.T) {
	o, err := SortOptions{}.withDefaults([]uint64{5, 200, 7})
	if err != nil {
		t.Fatal(err)
	}
	if o.GroupName != defaultGroupName {
		t.Errorf("group defaulted to %q, want %q", o.GroupName, defaultGroupName)
	}
	if o.Bits != 8 { // 200 needs 8 bits
		t.Errorf("bits derived as %d, want 8", o.Bits)
	}
	if o.Seed == "" {
		t.Error("no seed drawn")
	}
	if _, err := (SortOptions{}).withDefaults([]uint64{42}); err == nil {
		t.Error("single-value sort accepted")
	}
}

func TestSortPartyOptionsRequireBits(t *testing.T) {
	_, err := UnlinkableSortParty(context.Background(), []string{"a", "b"}, 0, 1, SortOptions{})
	if err == nil || !strings.Contains(err.Error(), "Bits") {
		t.Fatalf("missing Bits not diagnosed: %v", err)
	}
	if o, err := (SortOptions{Bits: 8}).withPartyDefaults(); err != nil {
		t.Fatal(err)
	} else {
		if o.Timeout != defaultPartyTimeout {
			t.Errorf("timeout defaulted to %v, want %v", o.Timeout, defaultPartyTimeout)
		}
		if o.Seed != "" {
			t.Error("party defaults drew a seed (empty must mean crypto/rand)")
		}
	}
}

// TestRuntimeOptionsValidation pins the entry-point rejection of
// negative runtime settings: silently defaulting them would flip their
// meaning (a negative Timeout is not "no deadline", a negative Grace
// would blame a reconnecting peer instantly), so every public entry
// point fails loudly instead — with the same meaning as rankparty's
// flag checks.
func TestRuntimeOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"negative timeout", Options{Runtime: Runtime{Timeout: -time.Second}}, "Timeout"},
		{"negative grace", Options{Runtime: Runtime{Recovery: &RecoveryOptions{Dir: "d", Grace: -time.Second}}}, "Grace"},
		{"negative heartbeat", Options{Runtime: Runtime{Recovery: &RecoveryOptions{Dir: "d", Heartbeat: -time.Millisecond}}}, "Heartbeat"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.opts.withDefaults(3)
			if err == nil {
				t.Fatal("invalid runtime options accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The sort options reject a negative Timeout on both the in-process
	// and the distributed resolution paths.
	if _, err := UnlinkableSort(context.Background(), []uint64{3, 1, 2}, SortOptions{Runtime: Runtime{Timeout: -time.Second}}); err == nil || !strings.Contains(err.Error(), "Timeout") {
		t.Errorf("in-process sort accepted a negative timeout: %v", err)
	}
	if _, err := (SortOptions{Bits: 8, Runtime: Runtime{Timeout: -time.Second}}).withPartyDefaults(); err == nil || !strings.Contains(err.Error(), "Timeout") {
		t.Errorf("party sort defaults accepted a negative timeout: %v", err)
	}
}

func TestUnlinkableSortStats(t *testing.T) {
	res, err := UnlinkableSortStats([]uint64{42, 97, 13}, SortOptions{
		GroupName: "toy-dl-256", Bits: 8, Seed: "sort-stats",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 3}
	for i, r := range res.Ranks {
		if r != want[i] {
			t.Errorf("rank[%d] = %d, want %d", i, r, want[i])
		}
	}
	if res.BytesOnWire <= 0 {
		t.Errorf("BytesOnWire = %d, want > 0", res.BytesOnWire)
	}
	if res.Rounds <= 0 {
		t.Errorf("Rounds = %d, want > 0", res.Rounds)
	}
}
