# Development targets. `make check` is the tier-1 gate plus the race
# detector over the concurrency-heavy packages; run it before pushing.

GO ?= go

# Packages whose tests exercise real concurrency (one goroutine per
# protocol party, fault-injection delays, TCP pumps, the lock-cheap
# observability registry): these run under the race detector in short
# mode as part of check.
RACE_PKGS := . ./internal/transport/ ./internal/core/ ./internal/unlinksort/ ./internal/obsv/ ./internal/kernel/ ./internal/journal/ ./internal/blame/ ./internal/telemetry/ ./internal/tracemerge/ ./internal/service/ ./cmd/rankparty/ ./cmd/rankd/

# Packages with fuzz targets guarding the untrusted decode boundaries
# (group element parsing, wirecodec frames, transport pumps). `make
# fuzz` runs each target briefly — a smoke pass over the corpora plus a
# little fresh exploration, fast enough for check.
FUZZ_PKGS := ./internal/group/ ./internal/wirecodec/ ./internal/elgamal/ ./internal/transport/
FUZZ_TIME ?= 2s

.PHONY: check vet build test race race-full fuzz chaos chaos-byz chaos-rankd bench bench-json bench-compare trace-demo demo-distributed telemetry-demo serve-demo loadtest-smoke clean

check: vet build test race fuzz chaos-rankd serve-demo loadtest-smoke

# staticcheck is optional tooling: run it when the developer has it
# installed, stay silent (and green) when they do not.
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short mode keeps the race pass fast; the full chaos sweep runs
# race-free in `test` and under the detector via `make race-full`.
race:
	$(GO) test -race -short $(RACE_PKGS)

race-full:
	$(GO) test -race $(RACE_PKGS) ./internal/chaos/

# Short-fuzz smoke: every Fuzz target in FUZZ_PKGS runs for FUZZ_TIME
# (one target at a time — go test allows a single -fuzz pattern per
# invocation). Catches decode-boundary panics before they need a long
# dedicated fuzzing session.
fuzz:
	@set -e; for pkg in $(FUZZ_PKGS); do \
		for target in $$($(GO) test -list 'Fuzz.*' $$pkg | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$target ($(FUZZ_TIME))"; \
			$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZ_TIME) $$pkg; \
		done; \
	done

# The randomized fault-injection suite at full schedule count, plus the
# kill-and-restart crash-recovery schedules, under the race detector.
chaos:
	$(GO) test -race -v -run 'TestChaos|TestCrash|TestRestart' ./internal/chaos/

# The Byzantine suite alone: equivocators, ciphertext tamperers, proof
# forgers and replayers across ~100 seeded schedules, under the race
# detector, asserting no honest party is ever blamed.
chaos-byz:
	$(GO) test -race -v -run 'TestByz|TestSubView' ./internal/chaos/

# The daemon-level chaos suite, under the race detector: real rankd
# processes, real SIGKILL — one of four daemons dies with eight
# sessions in flight and restarts on the same journals; every session
# must end byte-identical to the in-process ground truth, and SIGTERM
# must drain the mesh to clean exits.
chaos-rankd:
	$(GO) test -race -v -run 'TestChaosRankd' ./cmd/rankd/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Regenerate the committed machine-readable perf snapshot from
# instrumented real runs (same emitter as `benchtab -json`).
bench-json:
	BENCH_JSON=$(CURDIR)/BENCH_groupranking.json $(GO) test -run TestBenchSnapshot -count=1 .

# Drift gate: re-run the snapshot configurations and fail if any
# exponentiation or message count moved against the committed file.
# Wall times are machine-dependent and deliberately not compared.
bench-compare:
	BENCH_COMPARE=$(CURDIR)/BENCH_groupranking.json $(GO) test -run TestBenchSnapshot -count=1 .

# A 10-party run with the per-phase observability table and the JSONL
# span trace on stderr — the quickest way to see the tracer end to end.
trace-demo:
	$(GO) run ./cmd/grouprank -n 10 -group toy-dl-256 -seed demo -metrics -trace -

# The full framework as four real OS processes over loopback TCP: one
# initiator and three participants, each running cmd/rankparty.
demo-distributed:
	$(GO) build -o /tmp/rankparty ./cmd/rankparty
	/tmp/rankparty -addrs 127.0.0.1:9411,127.0.0.1:9412,127.0.0.1:9413,127.0.0.1:9414 \
	  -me 1 -attrs age:eq,activity:gt -values 30,50 -k 2 -d1 7 -d2 4 -h 6 -group toy-dl-256 & \
	/tmp/rankparty -addrs 127.0.0.1:9411,127.0.0.1:9412,127.0.0.1:9413,127.0.0.1:9414 \
	  -me 2 -attrs age:eq,activity:gt -values 25,60 -k 2 -d1 7 -d2 4 -h 6 -group toy-dl-256 & \
	/tmp/rankparty -addrs 127.0.0.1:9411,127.0.0.1:9412,127.0.0.1:9413,127.0.0.1:9414 \
	  -me 3 -attrs age:eq,activity:gt -values 45,90 -k 2 -d1 7 -d2 4 -h 6 -group toy-dl-256 & \
	/tmp/rankparty -addrs 127.0.0.1:9411,127.0.0.1:9412,127.0.0.1:9413,127.0.0.1:9414 \
	  -me 0 -attrs age:eq,activity:gt -values 30,0 -weights 2,1 -k 2 -d1 7 -d2 4 -h 6 -group toy-dl-256 && wait

# The distributed demo with the full telemetry stack: every party serves
# an admin endpoint (scrape http://127.0.0.1:942N/metrics or /healthz
# while it runs), writes a JSONL trace, and party 2 drags its feet with
# an injected 300ms per-phase delay. The final step merges the four
# traces into one timeline — ranktrace must name party 2 the straggler.
telemetry-demo:
	$(GO) build -o /tmp/rankparty ./cmd/rankparty
	$(GO) build -o /tmp/ranktrace ./cmd/ranktrace
	/tmp/rankparty -addrs 127.0.0.1:9411,127.0.0.1:9412,127.0.0.1:9413,127.0.0.1:9414 \
	  -me 1 -attrs age:eq,activity:gt -values 30,50 -k 2 -d1 7 -d2 4 -h 6 -group toy-dl-256 -seed demo \
	  -admin 127.0.0.1:9421 -trace /tmp/rank-p1.jsonl & \
	/tmp/rankparty -addrs 127.0.0.1:9411,127.0.0.1:9412,127.0.0.1:9413,127.0.0.1:9414 \
	  -me 2 -attrs age:eq,activity:gt -values 25,60 -k 2 -d1 7 -d2 4 -h 6 -group toy-dl-256 -seed demo \
	  -admin 127.0.0.1:9422 -trace /tmp/rank-p2.jsonl -straggle 300ms & \
	/tmp/rankparty -addrs 127.0.0.1:9411,127.0.0.1:9412,127.0.0.1:9413,127.0.0.1:9414 \
	  -me 3 -attrs age:eq,activity:gt -values 45,90 -k 2 -d1 7 -d2 4 -h 6 -group toy-dl-256 -seed demo \
	  -admin 127.0.0.1:9423 -trace /tmp/rank-p3.jsonl & \
	/tmp/rankparty -addrs 127.0.0.1:9411,127.0.0.1:9412,127.0.0.1:9413,127.0.0.1:9414 \
	  -me 0 -attrs age:eq,activity:gt -values 30,0 -weights 2,1 -k 2 -d1 7 -d2 4 -h 6 -group toy-dl-256 -seed demo \
	  -admin 127.0.0.1:9424 -trace /tmp/rank-p0.jsonl && wait
	/tmp/ranktrace /tmp/rank-p0.jsonl /tmp/rank-p1.jsonl /tmp/rank-p2.jsonl /tmp/rank-p3.jsonl

# Ranking as a service, end to end: a 4-daemon rankd mesh over
# loopback TCP plus one client round trip through the submit/poll API
# (create at the initiator daemon, one profile per participant daemon,
# poll the result), with the one-connection-per-peer-pair telemetry
# assertion. The quickest way to see the service deployment work.
serve-demo:
	$(GO) build -o /tmp/rankd ./cmd/rankd
	$(GO) build -o /tmp/rankload ./cmd/rankload
	@mesh=127.0.0.1:9461,127.0.0.1:9462,127.0.0.1:9463,127.0.0.1:9464; \
	/tmp/rankd -addrs $$mesh -me 0 -api 127.0.0.1:9471 -admin 127.0.0.1:9481 & p0=$$!; \
	/tmp/rankd -addrs $$mesh -me 1 -api 127.0.0.1:9472 & p1=$$!; \
	/tmp/rankd -addrs $$mesh -me 2 -api 127.0.0.1:9473 & p2=$$!; \
	/tmp/rankd -addrs $$mesh -me 3 -api 127.0.0.1:9474 & p3=$$!; \
	sleep 1; \
	/tmp/rankload -apis http://127.0.0.1:9471,http://127.0.0.1:9472,http://127.0.0.1:9473,http://127.0.0.1:9474 \
	  -sessions 1 -concurrency 1 -metrics http://127.0.0.1:9481; st=$$?; \
	kill $$p0 $$p1 $$p2 $$p3 2>/dev/null; wait; exit $$st

# The service acceptance run: 100 concurrent seeded sessions across a
# real 4-process daemon mesh, every outcome checked against the
# plaintext ground truth, throughput and p50/p99 reported, and the
# tentpole property asserted from the initiator daemon's metrics — the
# whole run used exactly ONE mesh connection per peer pair.
loadtest-smoke:
	$(GO) build -o /tmp/rankd ./cmd/rankd
	$(GO) build -o /tmp/rankload ./cmd/rankload
	@mesh=127.0.0.1:9401,127.0.0.1:9402,127.0.0.1:9403,127.0.0.1:9404; \
	/tmp/rankd -addrs $$mesh -me 0 -api 127.0.0.1:9441 -admin 127.0.0.1:9451 & p0=$$!; \
	/tmp/rankd -addrs $$mesh -me 1 -api 127.0.0.1:9442 & p1=$$!; \
	/tmp/rankd -addrs $$mesh -me 2 -api 127.0.0.1:9443 & p2=$$!; \
	/tmp/rankd -addrs $$mesh -me 3 -api 127.0.0.1:9444 & p3=$$!; \
	sleep 1; \
	/tmp/rankload -apis http://127.0.0.1:9441,http://127.0.0.1:9442,http://127.0.0.1:9443,http://127.0.0.1:9444 \
	  -sessions 100 -concurrency 16 -metrics http://127.0.0.1:9451; st=$$?; \
	kill $$p0 $$p1 $$p2 $$p3 2>/dev/null; wait; exit $$st

clean:
	$(GO) clean ./...
