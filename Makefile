# Development targets. `make check` is the tier-1 gate plus the race
# detector over the concurrency-heavy packages; run it before pushing.

GO ?= go

# Packages whose tests exercise real concurrency (one goroutine per
# protocol party, fault-injection delays, TCP pumps): these run under
# the race detector in short mode as part of check.
RACE_PKGS := ./internal/transport/ ./internal/core/ ./internal/unlinksort/

.PHONY: check vet build test race chaos bench clean

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short mode keeps the race pass fast; the full chaos sweep runs
# race-free in `test` and under the detector via `make race-full`.
race:
	$(GO) test -race -short $(RACE_PKGS)

race-full:
	$(GO) test -race $(RACE_PKGS) ./internal/chaos/

# The randomized fault-injection suite at full schedule count.
chaos:
	$(GO) test -v -run 'TestChaos|TestCrash' ./internal/chaos/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
