// Package groupranking is a from-scratch Go implementation of the
// privacy-preserving group-ranking framework of Li, Zhao, Xue and Silva
// (IEEE ICDCS 2012): an initiator and n participants jointly rank the
// participants by a private gain function without revealing private
// vectors or gain values, and — when at least two participants are
// honest — without letting up to n−2 colluders link a gain to its
// owner's identity.
//
// The package exposes three layers:
//
//   - Rank: the complete three-phase framework (secure gain computation
//     via a masked two-party dot product, identity-unlinkable multiparty
//     comparison over exponent ElGamal, top-k ranking submission with
//     over-claim detection).
//   - UnlinkableSort: the paper's core contribution as a standalone
//     primitive — n parties each hold one value and each learns only its
//     own rank.
//   - The secret-sharing baseline (Batcher sorting network over
//     Shamir-shared comparisons) selectable via Options.Sorter, used by
//     the paper's evaluation as the comparison point.
//
// All parties run as goroutines over an instrumented in-memory secure
// channel fabric; Result carries the transport statistics the
// benchmarks and the network simulation build on. The implementation is
// honest-but-curious and not hardened against side channels; see
// README.md.
package groupranking

import (
	"context"
	"math/big"
	"time"

	"groupranking/internal/core"
	"groupranking/internal/group"
	"groupranking/internal/obsv"
	"groupranking/internal/telemetry"
	"groupranking/internal/transport"
	"groupranking/internal/workload"
)

// Observer is the protocol observability registry: it collects
// phase-scoped spans per party (wall time plus crypto and communication
// counters) while a run is in flight. Create one with NewObserver, pass
// it via Options.Observer or SortOptions.Observer, and export with
// WriteJSONL (one span per line), WriteSummary (per-phase table) or
// Spans. A nil Observer disables observability at zero cost.
type Observer = obsv.Registry

// NewObserver creates an empty observability registry.
func NewObserver() *Observer { return obsv.NewRegistry() }

// Telemetry is the runtime metrics registry: streaming counters,
// gauges and latency histograms covering what the runtime under the
// protocol does — transport traffic and round cadence, link redials
// and retransmissions, heartbeat RTTs, journal durability latency.
// Create one with NewTelemetry, pass it via Options.Telemetry, and
// serve it live over HTTP with telemetry.AdminMux (the rankparty
// -admin flag does both). A nil Telemetry disables collection at zero
// cost, and enabling it never adds protocol messages or bytes.
type Telemetry = telemetry.Registry

// NewTelemetry creates an empty runtime metrics registry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// Attribute kinds (Section III-A of the paper).
const (
	// EqualTo attributes score best near the criterion value.
	EqualTo = workload.EqualTo
	// GreaterThan attributes score best above the criterion value.
	GreaterThan = workload.GreaterThan
)

// Attribute names one questionnaire dimension.
type Attribute = workload.Attribute

// Questionnaire is the published attribute-name vector: equal-to
// attributes first, then greater-than attributes.
type Questionnaire = workload.Questionnaire

// Criterion is the initiator's private criterion and weight vectors.
type Criterion = workload.Criterion

// Profile is one participant's private information vector.
type Profile = workload.Profile

// Submission is a top-k participant's disclosure to the initiator.
type Submission = core.Submission

// NewQuestionnaire validates attribute ordering and builds a
// questionnaire.
func NewQuestionnaire(attrs []Attribute) (*Questionnaire, error) {
	return workload.NewQuestionnaire(attrs)
}

// Sorter selects the phase-2 ranking protocol.
type Sorter = core.Sorter

// Sorter values.
const (
	// Unlinkable is the paper's identity-unlinkable sorting protocol
	// (default).
	Unlinkable = core.SorterUnlinkable
	// SecretSharing is the Jónsson-style baseline used for comparison.
	SecretSharing = core.SorterSecretSharing
)

// Options tunes a framework run. The zero value gives the paper's
// defaults: secp160r1, d1=15, d2=10, h=15, k=3, the unlinkable sorter
// and fresh random seeds.
type Options struct {
	// GroupName picks the DDH group: one of modp-1024, modp-2048,
	// modp-3072, secp160r1, secp224r1, secp256r1. Default secp160r1.
	GroupName string
	// K is the top-k cut (default 3, capped at n).
	K int
	// D1, D2, H are the attribute/weight/mask bit widths
	// (defaults 15/10/15).
	D1, D2, H int
	// Sorter selects the phase-2 protocol (default Unlinkable).
	Sorter Sorter
	// Seed makes the run deterministic; empty draws a fresh random seed.
	Seed string
	// SkipProofs disables the key-knowledge proofs (benchmark-only; a
	// real deployment must keep them).
	SkipProofs bool
	// ProveDecryption enables the decryption-integrity extension: every
	// chain hop commits to its output and proves each key-layer strip
	// with a Chaum–Pedersen transcript, verified by the next hop. It
	// roughly quintuples comparison-phase traffic and catches wrong-key
	// decryption, a step beyond the paper's honest-but-curious model.
	ProveDecryption bool
	// WireCodec overrides the wire-codec version this party announces in
	// session establishment (0 = the build's own version). It exists to
	// TEST the cross-version refusal path — two parties announcing
	// different codec versions abort the handshake with a named
	// mismatch; it does not change how frames are encoded.
	WireCodec int

	// Runtime bundles the execution knobs — Timeout, Workers, Recovery,
	// Faults, Observer, Telemetry — shared with SortOptions and the
	// rankd service config. The fields are embedded, so they read as
	// before: Options{Runtime: Runtime{Timeout: time.Minute}} sets what
	// opts.Timeout reads.
	Runtime
}

// RecoveryOptions configures the crash-recovery runtime of a
// distributed party. With recovery enabled the party appends every
// pinned parameter, its resolved seed, and every protocol message it
// sends or receives to an append-only checksummed journal in Dir; a
// crashed process restarted with the same flags replays its
// deterministic computation against that journal and rejoins the live
// session at the first un-journaled message. Peers meanwhile buffer
// undelivered traffic, redial with backoff, and only abort with blame
// once a disconnected party has overstayed Grace (and always by
// Options.Timeout).
type RecoveryOptions struct {
	// Dir is the journal directory (required). Each party of each
	// session writes one file, named after the session fingerprint and
	// party index; restarting with the same Dir and flags resumes it.
	Dir string
	// Grace is how long a disconnected peer may take to reconnect
	// before survivors blame it and abort (default 15s). Options.Timeout
	// still bounds every receive regardless.
	Grace time.Duration
	// Heartbeat is the link heartbeat interval that lets survivors tell
	// slow from dead (default 250ms). Negative values are rejected at
	// the entry point — a deployment must not run blind.
	Heartbeat time.Duration
}

// FaultPlan describes a deterministic fault-injection schedule; see
// transport.FaultPlan for field semantics. Runs with a fault plan end
// either in a correct ranking or a clean typed *transport.AbortError —
// never a wrong ranking and never a hang.
type FaultPlan = transport.FaultPlan

// FaultRule targets one fault at specific rounds and links.
type FaultRule = transport.FaultRule

// CrashAt builds the fault rule that crashes a party at a given round
// (party 0 is the initiator; participants are 1..n).
func CrashAt(party, round int) FaultRule {
	return transport.CrashAt(party, round)
}

// AbortError is the typed failure every aborted run surfaces: the first
// failing party, protocol phase and round. Test with transport.IsAbort
// or errors.As.
type AbortError = transport.AbortError

// ErrSessionMismatch is the abort cause the distributed entry points
// surface when the pre-crypto session handshake finds the parties
// configured with incompatible parameters (different group, bit widths,
// k, sorter, ...). Match with errors.Is on the returned *AbortError.
var ErrSessionMismatch = core.ErrSessionMismatch

// Result is the outcome of a framework run as seen by the simulation
// harness (which plays every role and may therefore report all ranks).
type Result struct {
	// Ranks holds each participant's rank, 1 = best; ties share a rank.
	Ranks []int
	// Submissions are the top-k disclosures the initiator received, in
	// rank order, with the initiator's recomputed gains.
	Submissions []Submission
	// Suspicious lists participants whose claimed rank contradicts the
	// recomputed gain (over-claim detection).
	Suspicious []int
	// BytesOnWire is the total traffic across all parties.
	BytesOnWire int64
	// Rounds is the number of distinct communication rounds used.
	Rounds int
}

// Rank executes the full privacy-preserving group-ranking framework
// in-process: the initiator holds the criterion, each participant one
// profile. It returns every participant's rank and the initiator's view
// of the top-k submissions.
//
// The run aborts cleanly when ctx is done; callers with no cancellation
// needs pass context.Background(). Options.Timeout, when set, composes
// with ctx — whichever deadline expires first wins.
func Rank(ctx context.Context, q *Questionnaire, criterion Criterion, profiles []Profile, opts Options) (*Result, error) {
	o, err := opts.withDefaults(len(profiles))
	if err != nil {
		return nil, err
	}
	g, err := group.ByName(o.GroupName)
	if err != nil {
		return nil, err
	}
	params := core.Params{
		N: len(profiles), M: q.M(), T: q.T(),
		D1: o.D1, D2: o.D2, H: o.H, K: o.K,
		Group: g, Sorter: o.Sorter, SkipProofs: o.SkipProofs,
		ProveDecryption: o.ProveDecryption, Workers: o.Workers,
	}
	ctx = obsv.WithRegistry(ctx, o.Observer)
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	var wrap func(transport.Net) transport.Net
	if o.Faults != nil {
		plan := *o.Faults
		wrap = func(n transport.Net) transport.Net {
			return transport.NewFaultNet(n, plan)
		}
	}
	res, fab, err := core.RunCtx(ctx, params, core.Inputs{
		Questionnaire: q,
		Criterion:     criterion,
		Profiles:      profiles,
	}, o.Seed, wrap)
	if err != nil {
		return nil, err
	}
	stats := fab.Stats()
	return &Result{
		Ranks:       res.Ranks,
		Submissions: res.Submissions,
		Suspicious:  res.Suspicious,
		BytesOnWire: stats.TotalBytes(),
		Rounds:      stats.DistinctRounds,
	}, nil
}

// RankCtx is a thin wrapper kept for callers of the old split API.
//
// Deprecated: Rank is context-first now; call Rank directly.
func RankCtx(ctx context.Context, q *Questionnaire, criterion Criterion, profiles []Profile, opts Options) (*Result, error) {
	return Rank(ctx, q, criterion, profiles, opts)
}

// ExpectedRanks computes the ground-truth ranking from plaintext gains.
// It exists for tests and examples; no party of a real deployment can
// evaluate it.
func ExpectedRanks(q *Questionnaire, criterion Criterion, profiles []Profile) ([]int, error) {
	return core.ExpectedRanks(q, criterion, profiles)
}

// Gain evaluates Definition 1 for one participant (plaintext helper).
func Gain(q *Questionnaire, criterion Criterion, profile Profile) (*big.Int, error) {
	return q.Gain(criterion, profile)
}
