package groupranking

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"groupranking/internal/api"
)

// The typed client for rankd, the ranking-as-a-service daemon
// (cmd/rankd, internal/service). The deployment model: one daemon per
// mesh slot — daemon 0 plays the initiator, daemon j participant j —
// each hosting many concurrent sessions over one multiplexed
// connection per peer pair. A client creates a session at the
// initiator daemon's endpoint (carrying the private criterion, which
// never leaves that daemon), each participant posts its private
// profile to its own daemon, and everyone polls the result.

// SessionSpec describes a service session: the questionnaire, the
// initiator's criterion, and the protocol knobs. See internal/api for
// field semantics; zero-value knobs take the framework defaults.
type SessionSpec = api.SessionSpec

// ClientAttribute names one questionnaire dimension in a SessionSpec
// (kinds AttrEqualTo / AttrGreaterThan).
type ClientAttribute = api.Attribute

// Attribute kind names for SessionSpec.Attributes.
const (
	// AttrEqualTo marks an attribute that scores best near the
	// criterion value.
	AttrEqualTo = api.KindEqualTo
	// AttrGreaterThan marks an attribute that scores best above the
	// criterion value.
	AttrGreaterThan = api.KindGreaterThan
)

// ClientCriterion is the initiator's private criterion in a
// SessionSpec.
type ClientCriterion = api.Criterion

// SessionInfo is a session's identity and lifecycle state.
type SessionInfo = api.SessionInfo

// SessionResult is one daemon's view of a session outcome: the
// initiator daemon reports Submissions/Suspicious, a participant
// daemon its own Rank. State is one of the api.State* values; Error
// carries the abort cause when State is "aborted".
type SessionResult = api.ResultResponse

// Session states a SessionResult.State can report.
const (
	SessionPending      = api.StatePending
	SessionEstablishing = api.StateEstablishing
	SessionRunning      = api.StateRunning
	SessionDone         = api.StateDone
	SessionAborted      = api.StateAborted
)

// APIError is the typed error every non-2xx daemon response decodes
// to.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable cause (api.Code* values,
	// e.g. "admission_full").
	Code string
	// Message is the human-readable cause.
	Message string
	// RetryAfter is the daemon's Retry-After hint, 0 when the response
	// carried none. Overload (admission_full) and graceful-shutdown
	// (draining) rejections always carry one.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("groupranking: daemon answered %d %s: %s", e.Status, e.Code, e.Message)
}

// IsAdmissionFull reports whether err is the daemon's admission-cap
// rejection.
func IsAdmissionFull(err error) bool {
	e, ok := err.(*APIError)
	return ok && e.Code == "admission_full"
}

// IsDraining reports whether err is a daemon's graceful-shutdown
// rejection: the daemon stopped admitting work and a restarted daemon
// (or another replica) will take the retry.
func IsDraining(err error) bool {
	e, ok := err.(*APIError)
	return ok && e.Code == "draining"
}

// IsRetryable reports whether err is a daemon rejection that a retry
// with backoff can outwait: overload shedding (admission_full) and
// graceful drain (draining). Both are rejected BEFORE any state
// changes, so retrying them is always safe.
func IsRetryable(err error) bool {
	return IsAdmissionFull(err) || IsDraining(err)
}

// RetryPolicy tunes a Client's automatic retry of retryable daemon
// rejections (see IsRetryable): capped exponential backoff with
// jitter, never sleeping less than the daemon's own Retry-After hint.
// The zero value of each knob takes the default.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries, first included (default 5).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 50ms); attempt n
	// waits about BaseDelay·2ⁿ, half of it jittered.
	BaseDelay time.Duration
	// MaxDelay caps a single wait (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// delay computes the wait before retry number attempt (0-based): the
// capped exponential step, at least the daemon's hint, with the upper
// half jittered so a rejected fleet does not reconverge in lockstep.
func (p RetryPolicy) delay(attempt int, hint time.Duration) time.Duration {
	d := p.BaseDelay << uint(attempt)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	if hint > d {
		d = hint
	}
	if d > 1 {
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	}
	return d
}

// Client talks to one rankd daemon.
type Client struct {
	base  string
	hc    *http.Client
	retry *RetryPolicy
}

// WithRetry returns a copy of the client that transparently retries
// retryable daemon rejections (overload shedding, graceful drain)
// under the given policy. Context cancellation interrupts a backoff
// sleep immediately.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	p = p.withDefaults()
	cc := *c
	cc.retry = &p
	return &cc
}

// NewClient builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:9441"). hc nil uses http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: baseURL, hc: hc}
}

// do runs one JSON round trip, retrying retryable rejections when the
// client has a RetryPolicy; out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if c.retry == nil {
		return c.doOnce(ctx, method, path, in, out)
	}
	p := *c.retry
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, in, out)
		if err == nil || !IsRetryable(err) || attempt+1 >= p.MaxAttempts {
			return err
		}
		hint := time.Duration(0)
		if e, ok := err.(*APIError); ok {
			hint = e.RetryAfter
		}
		t := time.NewTimer(p.delay(attempt, hint))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// doOnce runs exactly one JSON round trip.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("groupranking: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode, Code: "unknown"}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		var e api.Error
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Code != "" {
			apiErr.Code, apiErr.Message = e.Code, e.Message
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession creates a session at the initiator daemon and returns
// its ID. The spec's Criterion stays at that daemon; participants are
// told everything else (including the seed) over the daemons' control
// plane.
func (c *Client) CreateSession(ctx context.Context, spec SessionSpec) (string, error) {
	var info api.SessionInfo
	if err := c.do(ctx, http.MethodPost, api.PathSessions, spec, &info); err != nil {
		return "", err
	}
	return info.ID, nil
}

// Submit posts one participant's private profile to its own daemon,
// starting that daemon's half of the session.
func (c *Client) Submit(ctx context.Context, id string, values []int64) error {
	return c.do(ctx, http.MethodPost, api.SubmitPath(id), api.SubmitRequest{Values: values}, nil)
}

// Result polls a session's outcome once. The returned State says how
// far the session is; the outcome fields are filled when it is
// terminal (SessionDone or SessionAborted).
func (c *Client) Result(ctx context.Context, id string) (*SessionResult, error) {
	var res SessionResult
	if err := c.do(ctx, http.MethodGet, api.ResultPath(id), nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Info fetches a session's lifecycle snapshot.
func (c *Client) Info(ctx context.Context, id string) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(ctx, http.MethodGet, api.SessionPath(id), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Sessions lists the daemon's hosted sessions, oldest first.
func (c *Client) Sessions(ctx context.Context) ([]SessionInfo, error) {
	var infos []SessionInfo
	if err := c.do(ctx, http.MethodGet, api.PathSessions, nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// WaitResult polls every interval (default 25ms) until the session is
// terminal or ctx expires. An aborted session is returned with a nil
// error — the abort cause is in SessionResult.Error; the caller
// decides whether that is a failure.
func (c *Client) WaitResult(ctx context.Context, id string, interval time.Duration) (*SessionResult, error) {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		res, err := c.Result(ctx, id)
		if err != nil {
			return nil, err
		}
		if api.Terminal(res.State) {
			return res, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}
