package groupranking

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"groupranking/internal/api"
)

// The typed client for rankd, the ranking-as-a-service daemon
// (cmd/rankd, internal/service). The deployment model: one daemon per
// mesh slot — daemon 0 plays the initiator, daemon j participant j —
// each hosting many concurrent sessions over one multiplexed
// connection per peer pair. A client creates a session at the
// initiator daemon's endpoint (carrying the private criterion, which
// never leaves that daemon), each participant posts its private
// profile to its own daemon, and everyone polls the result.

// SessionSpec describes a service session: the questionnaire, the
// initiator's criterion, and the protocol knobs. See internal/api for
// field semantics; zero-value knobs take the framework defaults.
type SessionSpec = api.SessionSpec

// ClientAttribute names one questionnaire dimension in a SessionSpec
// (kinds AttrEqualTo / AttrGreaterThan).
type ClientAttribute = api.Attribute

// Attribute kind names for SessionSpec.Attributes.
const (
	// AttrEqualTo marks an attribute that scores best near the
	// criterion value.
	AttrEqualTo = api.KindEqualTo
	// AttrGreaterThan marks an attribute that scores best above the
	// criterion value.
	AttrGreaterThan = api.KindGreaterThan
)

// ClientCriterion is the initiator's private criterion in a
// SessionSpec.
type ClientCriterion = api.Criterion

// SessionInfo is a session's identity and lifecycle state.
type SessionInfo = api.SessionInfo

// SessionResult is one daemon's view of a session outcome: the
// initiator daemon reports Submissions/Suspicious, a participant
// daemon its own Rank. State is one of the api.State* values; Error
// carries the abort cause when State is "aborted".
type SessionResult = api.ResultResponse

// Session states a SessionResult.State can report.
const (
	SessionPending      = api.StatePending
	SessionEstablishing = api.StateEstablishing
	SessionRunning      = api.StateRunning
	SessionDone         = api.StateDone
	SessionAborted      = api.StateAborted
)

// APIError is the typed error every non-2xx daemon response decodes
// to.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable cause (api.Code* values,
	// e.g. "admission_full").
	Code string
	// Message is the human-readable cause.
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("groupranking: daemon answered %d %s: %s", e.Status, e.Code, e.Message)
}

// IsAdmissionFull reports whether err is the daemon's admission-cap
// rejection — the one client error worth retrying with backoff.
func IsAdmissionFull(err error) bool {
	e, ok := err.(*APIError)
	return ok && e.Code == "admission_full"
}

// Client talks to one rankd daemon.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:9441"). hc nil uses http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: baseURL, hc: hc}
}

// do runs one JSON round trip; out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("groupranking: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode, Code: "unknown"}
		var e api.Error
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Code != "" {
			apiErr.Code, apiErr.Message = e.Code, e.Message
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession creates a session at the initiator daemon and returns
// its ID. The spec's Criterion stays at that daemon; participants are
// told everything else (including the seed) over the daemons' control
// plane.
func (c *Client) CreateSession(ctx context.Context, spec SessionSpec) (string, error) {
	var info api.SessionInfo
	if err := c.do(ctx, http.MethodPost, api.PathSessions, spec, &info); err != nil {
		return "", err
	}
	return info.ID, nil
}

// Submit posts one participant's private profile to its own daemon,
// starting that daemon's half of the session.
func (c *Client) Submit(ctx context.Context, id string, values []int64) error {
	return c.do(ctx, http.MethodPost, api.SubmitPath(id), api.SubmitRequest{Values: values}, nil)
}

// Result polls a session's outcome once. The returned State says how
// far the session is; the outcome fields are filled when it is
// terminal (SessionDone or SessionAborted).
func (c *Client) Result(ctx context.Context, id string) (*SessionResult, error) {
	var res SessionResult
	if err := c.do(ctx, http.MethodGet, api.ResultPath(id), nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Info fetches a session's lifecycle snapshot.
func (c *Client) Info(ctx context.Context, id string) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(ctx, http.MethodGet, api.SessionPath(id), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Sessions lists the daemon's hosted sessions, oldest first.
func (c *Client) Sessions(ctx context.Context) ([]SessionInfo, error) {
	var infos []SessionInfo
	if err := c.do(ctx, http.MethodGet, api.PathSessions, nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// WaitResult polls every interval (default 25ms) until the session is
// terminal or ctx expires. An aborted session is returned with a nil
// error — the abort cause is in SessionResult.Error; the caller
// decides whether that is a failure.
func (c *Client) WaitResult(ctx context.Context, id string, interval time.Duration) (*SessionResult, error) {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		res, err := c.Result(ctx, id)
		if err != nil {
			return nil, err
		}
		if api.Terminal(res.State) {
			return res, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}
