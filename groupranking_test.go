package groupranking

import (
	"context"
	"sort"
	"sync"
	"testing"

	"groupranking/internal/transport"
)

// fastOpts keeps public-API tests quick: small bit widths and a
// deterministic seed.
func fastOpts(seed string) Options {
	return Options{D1: 6, D2: 4, H: 6, K: 2, Seed: seed}
}

func demoQuestionnaire(t *testing.T) *Questionnaire {
	t.Helper()
	q, err := NewQuestionnaire([]Attribute{
		{Name: "age", Kind: EqualTo},
		{Name: "blood_pressure", Kind: EqualTo},
		{Name: "friends", Kind: GreaterThan},
		{Name: "income", Kind: GreaterThan},
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func demoData(t *testing.T) (Criterion, []Profile) {
	t.Helper()
	crit := Criterion{
		Values:  []int64{35, 20, 10, 30},
		Weights: []int64{5, 3, 2, 4},
	}
	profiles := []Profile{
		{Values: []int64{35, 20, 60, 60}}, // perfect match, high extras
		{Values: []int64{40, 25, 30, 40}},
		{Values: []int64{20, 10, 50, 20}},
		{Values: []int64{36, 21, 5, 25}},
	}
	return crit, profiles
}

func TestRankMatchesPlaintextOrder(t *testing.T) {
	q := demoQuestionnaire(t)
	crit, profiles := demoData(t)
	res, err := Rank(context.Background(), q, crit, profiles, fastOpts("api-basic"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedRanks(q, crit, profiles)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if res.Ranks[j] != want[j] {
			t.Errorf("participant %d: rank %d, want %d", j, res.Ranks[j], want[j])
		}
	}
	if len(res.Suspicious) != 0 {
		t.Errorf("honest run flagged %v", res.Suspicious)
	}
	if res.BytesOnWire <= 0 || res.Rounds <= 0 {
		t.Error("transport statistics missing")
	}
	// k=2 ⇒ exactly the two best submitted.
	if len(res.Submissions) != 2 {
		t.Fatalf("got %d submissions, want 2", len(res.Submissions))
	}
	for _, s := range res.Submissions {
		if s.ClaimedRank > 2 {
			t.Errorf("submission with rank %d", s.ClaimedRank)
		}
		g, err := Gain(q, crit, profiles[s.Participant])
		if err != nil {
			t.Fatal(err)
		}
		if s.Gain.Cmp(g) != 0 {
			t.Errorf("submission gain mismatch for %d", s.Participant)
		}
	}
}

func TestRankSecretSharingBackend(t *testing.T) {
	q := demoQuestionnaire(t)
	crit, profiles := demoData(t)
	// Odd participant count exercises degree (n−1)/2 = 1 resharing.
	profiles = profiles[:3]
	opts := fastOpts("api-ss")
	opts.Sorter = SecretSharing
	res, err := Rank(context.Background(), q, crit, profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedRanks(q, crit, profiles)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if res.Ranks[j] != want[j] {
			t.Errorf("participant %d: rank %d, want %d", j, res.Ranks[j], want[j])
		}
	}
}

func TestRankDeterministicWithSeed(t *testing.T) {
	q := demoQuestionnaire(t)
	crit, profiles := demoData(t)
	a, err := Rank(context.Background(), q, crit, profiles, fastOpts("det"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rank(context.Background(), q, crit, profiles, fastOpts("det"))
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Ranks {
		if a.Ranks[j] != b.Ranks[j] {
			t.Fatal("same seed produced different ranks")
		}
	}
}

func TestRankDefaultsApplied(t *testing.T) {
	o, err := Options{}.withDefaults(2)
	if err != nil {
		t.Fatal(err)
	}
	if o.GroupName != "secp160r1" || o.D1 != 15 || o.D2 != 10 || o.H != 15 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.K != 2 {
		t.Errorf("k should cap at n: %d", o.K)
	}
	if o.Seed == "" {
		t.Error("seed not drawn")
	}
}

func TestRankUnknownGroup(t *testing.T) {
	q := demoQuestionnaire(t)
	crit, profiles := demoData(t)
	opts := fastOpts("bad-group")
	opts.GroupName = "nope"
	if _, err := Rank(context.Background(), q, crit, profiles, opts); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestUnlinkableSortRanks(t *testing.T) {
	res, err := UnlinkableSort(context.Background(), []uint64{50, 10, 90, 30}, SortOptions{Seed: "sort-basic"})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 1, 3}
	for i := range want {
		if res.Ranks[i] != want[i] {
			t.Errorf("ranks = %v, want %v", res.Ranks, want)
		}
	}
}

func TestUnlinkableSortTiesAndBits(t *testing.T) {
	res, err := UnlinkableSort(context.Background(), []uint64{7, 7, 3}, SortOptions{Seed: "sort-ties", Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0] != 1 || res.Ranks[1] != 1 || res.Ranks[2] != 3 {
		t.Errorf("ranks = %v, want [1 1 3]", res.Ranks)
	}
}

func TestUnlinkableSortZeroValues(t *testing.T) {
	res, err := UnlinkableSort(context.Background(), []uint64{0, 0}, SortOptions{Seed: "sort-zeros"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0] != 1 || res.Ranks[1] != 1 {
		t.Errorf("ranks = %v, want [1 1]", res.Ranks)
	}
}

func TestUnlinkableSortValidation(t *testing.T) {
	if _, err := UnlinkableSort(context.Background(), []uint64{1}, SortOptions{}); err == nil {
		t.Error("single value accepted")
	}
	if _, err := UnlinkableSort(context.Background(), []uint64{1, 2}, SortOptions{GroupName: "nope"}); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestUnlinkableSortPermutationProperty(t *testing.T) {
	values := []uint64{11, 44, 22, 99, 55}
	res, err := UnlinkableSort(context.Background(), values, SortOptions{Seed: "sort-perm"})
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int(nil), res.Ranks...)
	sort.Ints(sorted)
	for i, r := range sorted {
		if r != i+1 {
			t.Fatalf("ranks %v are not a permutation of 1..n", res.Ranks)
		}
	}
}

func TestUnlinkableSortPartyOverTCP(t *testing.T) {
	addrs, err := transport.FreeLoopbackAddrs(3)
	if err != nil {
		t.Fatal(err)
	}
	values := []uint64{42, 7, 99}
	ranks := make([]int, len(values))
	errs := make([]error, len(values))
	var wg sync.WaitGroup
	for me := range values {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			ranks[me], errs[me] = UnlinkableSortParty(context.Background(), addrs, me, values[me], SortOptions{
				Bits: 8, Seed: "tcp-public", GroupName: "toy-dl-256",
			})
		}()
	}
	wg.Wait()
	for me, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", me, err)
		}
	}
	want := []int{2, 3, 1}
	for me := range want {
		if ranks[me] != want[me] {
			t.Errorf("party %d: rank %d, want %d", me, ranks[me], want[me])
		}
	}
}

func TestUnlinkableSortPartyRequiresBits(t *testing.T) {
	if _, err := UnlinkableSortParty(context.Background(), []string{"a", "b"}, 0, 1, SortOptions{}); err == nil {
		t.Error("missing Bits accepted")
	}
}

func TestRankWithProveDecryption(t *testing.T) {
	q := demoQuestionnaire(t)
	crit, profiles := demoData(t)
	opts := fastOpts("api-pd")
	opts.GroupName = "toy-dl-256"
	opts.ProveDecryption = true
	res, err := Rank(context.Background(), q, crit, profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain := fastOpts("api-pd")
	plain.GroupName = "toy-dl-256"
	resPlain, err := Rank(context.Background(), q, crit, profiles, plain)
	if err != nil {
		t.Fatal(err)
	}
	for j := range res.Ranks {
		if res.Ranks[j] != resPlain.Ranks[j] {
			t.Errorf("participant %d: integrity mode changed rank %d→%d", j, resPlain.Ranks[j], res.Ranks[j])
		}
	}
	if res.BytesOnWire <= resPlain.BytesOnWire {
		t.Error("integrity evidence should cost extra bytes")
	}
}
