// Distributed: the identity-unlinkable sorting protocol over real TCP
// connections. Three parties — here goroutines, but the same code runs
// as separate processes or machines via cmd/sortparty — privately rank
// their bids; every ciphertext, proof and shuffle vector crosses an
// actual socket, and each party learns only its own rank. Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"sync"

	"groupranking"
	"groupranking/internal/transport"
)

func main() {
	// In a real deployment these are the parties' published endpoints.
	addrs, err := transport.FreeLoopbackAddrs(3)
	if err != nil {
		log.Fatal(err)
	}
	parties := []struct {
		name string
		bid  uint64
	}{
		{"supplier-a", 18_500},
		{"supplier-b", 17_900},
		{"supplier-c", 19_200},
	}

	fmt.Println("Three suppliers rank their sealed bids over TCP;")
	fmt.Println("nobody — including the other suppliers — sees a losing bid.")

	var wg sync.WaitGroup
	for me := range parties {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			rank, err := groupranking.UnlinkableSortParty(addrs, me, parties[me].bid, groupranking.SortOptions{
				Bits:      16,
				GroupName: "toy-dl-256", // demo group; use secp160r1+ in production
				Seed:      "distributed-example",
			})
			if err != nil {
				log.Fatalf("%s: %v", parties[me].name, err)
			}
			fmt.Printf("  %s learned: my bid is the #%d highest\n", parties[me].name, rank)
		}()
	}
	wg.Wait()
	fmt.Println("Done — the same binary works across machines via cmd/sortparty.")
}
