// Distributed: the COMPLETE group-ranking framework over real TCP
// connections — an initiator and three participants, here goroutines,
// but the same code runs as separate processes or machines via
// cmd/rankparty. All three phases cross actual sockets: the masked
// dot-product gain computation, the identity-unlinkable comparison and
// the top-k submission. Before any crypto is spent, the parties run a
// session handshake confirming they agree on the group, bit widths, k
// and sorter. Run with:
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"groupranking"
	"groupranking/internal/transport"
)

func main() {
	// A marketing campaign: the initiator privately weights age
	// (closeness to 30) and activity (the higher the better); each
	// participant holds a private profile.
	q, err := groupranking.NewQuestionnaire([]groupranking.Attribute{
		{Name: "age", Kind: groupranking.EqualTo},
		{Name: "activity", Kind: groupranking.GreaterThan},
	})
	if err != nil {
		log.Fatal(err)
	}
	criterion := groupranking.Criterion{Values: []int64{30, 0}, Weights: []int64{2, 1}}
	profiles := []groupranking.Profile{
		{Values: []int64{30, 50}}, // ada: exact age match, solid activity
		{Values: []int64{25, 60}}, // ben: close age, high activity
		{Values: []int64{45, 90}}, // cam: far age, very high activity
	}
	names := []string{"ada", "ben", "cam"}

	// In a real deployment these are the parties' published endpoints;
	// index 0 is the initiator.
	addrs, err := transport.FreeLoopbackAddrs(len(profiles) + 1)
	if err != nil {
		log.Fatal(err)
	}
	// Every party must start with identical protocol options — the
	// session handshake aborts the run if they disagree.
	opts := groupranking.Options{
		K:  2,
		D1: 7, D2: 4, H: 6,
		GroupName: "toy-dl-256", // demo group; use secp160r1+ in production
		Seed:      "distributed-example",
	}

	fmt.Println("An initiator and three participants run the full ranking")
	fmt.Println("framework over TCP; each participant learns only its own rank,")
	fmt.Println("and only the top-2 submit their profiles.")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := groupranking.RankInitiatorParty(context.Background(), q, criterion, addrs, opts)
		if err != nil {
			log.Fatalf("initiator: %v", err)
		}
		fmt.Printf("  initiator received %d submissions:\n", len(res.Submissions))
		for _, s := range res.Submissions {
			fmt.Printf("    rank %d: %s %v (recomputed gain %v)\n",
				s.ClaimedRank, names[s.Participant], s.Profile.Values, s.Gain)
		}
	}()
	for j := 1; j <= len(profiles); j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := groupranking.RankParticipantParty(context.Background(), q, addrs, j, profiles[j-1], opts)
			if err != nil {
				log.Fatalf("%s: %v", names[j-1], err)
			}
			fmt.Printf("  %s learned: my gain ranks #%d\n", names[j-1], res.Rank)
		}()
	}
	wg.Wait()
	fmt.Println("Done — the same protocol runs across machines via cmd/rankparty")
	fmt.Println("(and cmd/sortparty still serves the standalone sorting primitive).")
}
