// Recruiting: the paper's third application (Section I) — an employer
// on a business network recruits for a position with a requirement on
// sensitive health information. Candidates are ranked without exposing
// health data of those not hired. The example also uses the standalone
// identity-unlinkable sorting primitive directly: the final-round
// candidates privately rank their salary expectations so the employer
// can budget without seeing any individual number. Run with:
//
//	go run ./examples/recruiting
package main

import (
	"context"
	"fmt"
	"log"

	"groupranking"
)

func main() {
	// Part 1: full framework — rank applicants for the position.
	q, err := groupranking.NewQuestionnaire([]groupranking.Attribute{
		{Name: "fitness_score", Kind: groupranking.EqualTo}, // role has a physical profile target
		{Name: "resting_heart_rate", Kind: groupranking.EqualTo},
		{Name: "years_experience", Kind: groupranking.GreaterThan},
		{Name: "certifications", Kind: groupranking.GreaterThan},
	})
	if err != nil {
		log.Fatal(err)
	}
	employer := groupranking.Criterion{
		Values:  []int64{75, 60, 0, 0},
		Weights: []int64{6, 3, 5, 2},
	}
	applicants := []string{"ana", "ben", "cho", "dee", "eli", "fay"}
	profiles := []groupranking.Profile{
		{Values: []int64{78, 62, 9, 4}},
		{Values: []int64{50, 80, 15, 6}},
		{Values: []int64{74, 59, 6, 3}},
		{Values: []int64{76, 61, 12, 5}},
		{Values: []int64{90, 45, 3, 1}},
		{Values: []int64{72, 65, 8, 2}},
	}

	const shortlist = 3
	res, err := groupranking.Rank(context.Background(), q, employer, profiles, groupranking.Options{
		K: shortlist, D1: 7, D2: 3, H: 7, Seed: "recruiting", GroupName: "toy-dl-256",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Recruiting round: %d applicants, shortlist of %d\n\n", len(applicants), shortlist)
	for i, name := range applicants {
		note := "health data stays private"
		if res.Ranks[i] <= shortlist {
			note = "shortlisted, profile disclosed"
		}
		fmt.Printf("  %-4s rank %d — %s\n", name, res.Ranks[i], note)
	}

	// Part 2: the shortlisted candidates rank salary expectations with
	// the standalone unlinkable sort. Everyone learns only their own
	// position; the employer sees none of the numbers.
	expectations := []uint64{96_000, 84_500, 102_000}
	sorted, err := groupranking.UnlinkableSort(context.Background(), expectations, groupranking.SortOptions{Seed: "salaries", GroupName: "toy-dl-256"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nShortlist salary-expectation ranking (self-knowledge only):")
	shortNames := make([]string, 0, shortlist)
	for i, name := range applicants {
		if res.Ranks[i] <= shortlist {
			shortNames = append(shortNames, name)
		}
	}
	for i, r := range sorted.Ranks {
		fmt.Printf("  candidate %s: my expectation is the #%d highest (nobody else knows it)\n", shortNames[i], r)
	}
}
