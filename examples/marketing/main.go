// Marketing: the paper's motivating scenario (Section I). A health and
// nutrition company promotes a product in an online community and wants
// the k most suitable trial participants without collecting anyone
// else's personal data. The target demographic is described by "equal
// to" attributes (age, blood pressure) and marketing reach by "greater
// than" attributes (number of friends, annual income). Run with:
//
//	go run ./examples/marketing
package main

import (
	"context"
	"fmt"
	"log"

	"groupranking"
)

func main() {
	q, err := groupranking.NewQuestionnaire([]groupranking.Attribute{
		{Name: "age", Kind: groupranking.EqualTo},
		{Name: "blood_pressure", Kind: groupranking.EqualTo},
		{Name: "friends", Kind: groupranking.GreaterThan},
		{Name: "annual_income_k", Kind: groupranking.GreaterThan},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The company's trade secret: the product works best on people near
	// 45 with blood pressure near 130; reach matters, income less so.
	criterion := groupranking.Criterion{
		Values:  []int64{45, 130, 0, 0},
		Weights: []int64{8, 4, 3, 1},
	}

	// Twelve community members answered the questionnaire privately.
	type member struct {
		name    string
		profile groupranking.Profile
	}
	members := []member{
		{"alice", groupranking.Profile{Values: []int64{44, 128, 310, 72}}},
		{"bob", groupranking.Profile{Values: []int64{23, 115, 840, 35}}},
		{"carol", groupranking.Profile{Values: []int64{46, 133, 150, 96}}},
		{"dave", groupranking.Profile{Values: []int64{45, 130, 95, 41}}},
		{"erin", groupranking.Profile{Values: []int64{61, 150, 420, 88}}},
		{"frank", groupranking.Profile{Values: []int64{47, 127, 505, 59}}},
		{"grace", groupranking.Profile{Values: []int64{39, 122, 220, 77}}},
		{"heidi", groupranking.Profile{Values: []int64{52, 138, 65, 102}}},
		{"ivan", groupranking.Profile{Values: []int64{45, 131, 702, 64}}},
		{"judy", groupranking.Profile{Values: []int64{30, 119, 55, 48}}},
		{"mallory", groupranking.Profile{Values: []int64{48, 136, 388, 83}}},
		{"oscar", groupranking.Profile{Values: []int64{43, 125, 134, 55}}},
	}
	profiles := make([]groupranking.Profile, len(members))
	for i, m := range members {
		profiles[i] = m.profile
	}

	const k = 4
	res, err := groupranking.Rank(context.Background(), q, criterion, profiles, groupranking.Options{
		K: k, D1: 10, D2: 4, H: 8, Seed: "marketing-campaign", GroupName: "toy-dl-256",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Free-trial campaign: %d members, top %d invited\n\n", len(members), k)
	fmt.Println("What each member learned (their own rank only):")
	for i, m := range members {
		marker := ""
		if res.Ranks[i] <= k {
			marker = "  → invited, submitted profile"
		}
		fmt.Printf("  %-8s rank %2d%s\n", m.name, res.Ranks[i], marker)
	}

	fmt.Println("\nWhat the company learned (top-k submissions only):")
	for _, s := range res.Submissions {
		fmt.Printf("  rank %d: %-8s profile %v  gain %s\n",
			s.ClaimedRank, members[s.Participant].name, s.Profile.Values, s.Gain)
	}
	if len(res.Suspicious) == 0 {
		fmt.Println("\nOver-claim check: all submitted ranks consistent with recomputed gains.")
	} else {
		fmt.Printf("\nOver-claim check FLAGGED members: %v\n", res.Suspicious)
	}
	fmt.Printf("\nPrivacy: the %d low-ranking members disclosed nothing beyond their own rank.\n",
		len(members)-len(res.Submissions))
}
