// Matchmaking: the paper's second application (Section I) — a person
// finds the "best matched" people from a group by ranking them against
// a private preference vector over sensitive attributes (political
// leaning, religiosity, lifestyle), without the group members revealing
// those attributes to anyone. Run with:
//
//	go run ./examples/matchmaking
package main

import (
	"context"
	"fmt"
	"log"

	"groupranking"
)

func main() {
	// All attributes are "equal to": a match is someone close to the
	// seeker's own positions on each 0..100 scale.
	q, err := groupranking.NewQuestionnaire([]groupranking.Attribute{
		{Name: "political_leaning", Kind: groupranking.EqualTo},
		{Name: "religiosity", Kind: groupranking.EqualTo},
		{Name: "outdoor_lifestyle", Kind: groupranking.EqualTo},
		{Name: "night_owl", Kind: groupranking.EqualTo},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The seeker's own (private) positions and how much each dimension
	// matters to them.
	seeker := groupranking.Criterion{
		Values:  []int64{35, 20, 80, 60},
		Weights: []int64{5, 2, 4, 1},
	}

	candidates := []string{"kim", "lee", "maya", "noor", "omar", "pia", "quinn"}
	profiles := []groupranking.Profile{
		{Values: []int64{38, 25, 75, 55}}, // kim: close on everything
		{Values: []int64{80, 60, 20, 90}}, // lee: far on everything
		{Values: []int64{35, 20, 80, 10}}, // maya: perfect except night_owl (low weight)
		{Values: []int64{30, 35, 85, 65}},
		{Values: []int64{50, 20, 60, 60}},
		{Values: []int64{36, 18, 78, 62}}, // pia: near-perfect
		{Values: []int64{10, 90, 95, 30}},
	}

	res, err := groupranking.Rank(context.Background(), q, seeker, profiles, groupranking.Options{
		K: 2, D1: 7, D2: 3, H: 7, Seed: "matchmaking", GroupName: "toy-dl-256",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Private matchmaking over", len(candidates), "candidates")
	fmt.Println("Each candidate learned only their own compatibility rank:")
	for i, name := range candidates {
		fmt.Printf("  %-6s rank %d\n", name, res.Ranks[i])
	}
	fmt.Println("\nOnly the top-2 matches revealed their profiles to the seeker:")
	for _, s := range res.Submissions {
		fmt.Printf("  rank %d: %-6s positions %v\n", s.ClaimedRank, candidates[s.Participant], s.Profile.Values)
	}

	// Sanity: the protocol ranking must agree with the plaintext gains.
	want, err := groupranking.ExpectedRanks(q, seeker, profiles)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if res.Ranks[i] != want[i] {
			log.Fatalf("rank mismatch for %s: got %d want %d", candidates[i], res.Ranks[i], want[i])
		}
	}
	fmt.Println("\nCross-check: private ranks equal the plaintext gain ranking.")
}
