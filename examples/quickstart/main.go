// Quickstart: rank eight participants privately and print each party's
// view. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"groupranking"
)

func main() {
	// The initiator publishes a questionnaire: "equal to" attributes
	// first (best near the criterion), then "greater than" attributes
	// (the more the better).
	q, err := groupranking.NewQuestionnaire([]groupranking.Attribute{
		{Name: "age", Kind: groupranking.EqualTo},
		{Name: "activity_score", Kind: groupranking.GreaterThan},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The initiator's private criterion: prefers age near 30, weights
	// age twice as heavily as activity.
	criterion := groupranking.Criterion{
		Values:  []int64{30, 0},
		Weights: []int64{2, 1},
	}

	// Each participant holds a private profile.
	profiles := []groupranking.Profile{
		{Values: []int64{30, 50}}, // exact age match, high activity
		{Values: []int64{25, 60}},
		{Values: []int64{31, 20}},
		{Values: []int64{45, 90}},
		{Values: []int64{30, 10}},
		{Values: []int64{28, 55}},
		{Values: []int64{60, 99}},
		{Values: []int64{33, 40}},
	}

	// Small bit widths keep this demo fast; production defaults are
	// d1=15, d2=10, h=15 (see Options).
	res, err := groupranking.Rank(context.Background(), q, criterion, profiles, groupranking.Options{
		K: 3, D1: 7, D2: 4, H: 6, Seed: "quickstart",
		// toy-dl-256 is a demo-only group so the example finishes in
		// seconds; drop this line to use the production default secp160r1.
		GroupName: "toy-dl-256",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Each participant learned only its own rank:")
	for j, rank := range res.Ranks {
		fmt.Printf("  participant %d → rank %d\n", j, rank)
	}

	fmt.Println("\nThe initiator received only the top-3 submissions:")
	for _, s := range res.Submissions {
		fmt.Printf("  rank %d: participant %d, profile %v, recomputed gain %s\n",
			s.ClaimedRank, s.Participant, s.Profile.Values, s.Gain)
	}
	fmt.Printf("\nTraffic: %d bytes over %d communication rounds\n", res.BytesOnWire, res.Rounds)
}
