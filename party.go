package groupranking

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"groupranking/internal/core"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/journal"
	"groupranking/internal/obsv"
	"groupranking/internal/transport"
)

// The distributed deployment entry points: one process per party of the
// complete three-phase framework over a real TCP mesh. addrs lists
// every party's listen address with the initiator at addrs[0] and
// participant j at addrs[j]; each process listens on its own slot and
// dials the rest (gob-framed full mesh). Before any crypto is spent the
// parties run a session-establishment round confirming they agree on
// the group, bit widths, k and sorter — a misconfigured party surfaces
// as a typed *AbortError with cause ErrSessionMismatch, not as garbage.
//
// All parties must be started with identical Options (that is what the
// handshake verifies). A non-empty Options.Seed makes the whole run
// deterministic — each party derives its RNG exactly as the in-process
// Rank harness does, so a seed-fixed distributed run produces the same
// Ranks and Submissions as Rank with that seed; an empty seed draws
// fresh local randomness per process.

// InitiatorResult is what RankInitiatorParty learns: the framework's
// initiator-side outcome plus this endpoint's transport statistics.
type InitiatorResult struct {
	// Submissions are the top-k disclosures received, in claimed-rank
	// order, with the initiator's recomputed gains.
	Submissions []Submission
	// Suspicious lists participants whose claimed rank contradicts the
	// recomputed gain (over-claim detection).
	Suspicious []int
	// BytesOnWire counts the bytes this endpoint sent (a distributed
	// party cannot see the whole mesh's traffic).
	BytesOnWire int64
	// Rounds is the number of distinct communication rounds this
	// endpoint took part in.
	Rounds int
	// TraceID is the run-level trace identifier the session round
	// agreed on; every span this party exported carries it.
	TraceID string
}

// ParticipantResult is what RankParticipantParty learns: its own rank
// — nothing about anyone else's — plus this endpoint's transport
// statistics.
type ParticipantResult struct {
	// Rank is this participant's rank (1 = best). If Rank ≤ the agreed
	// k, this party submitted its profile to the initiator.
	Rank int
	// BytesOnWire counts the bytes this endpoint sent.
	BytesOnWire int64
	// Rounds is the number of distinct communication rounds this
	// endpoint took part in.
	Rounds int
	// TraceID is the run-level trace identifier the session round
	// agreed on; every span this party exported carries it.
	TraceID string
}

// RankInitiatorParty runs the initiator's side of the full framework
// over real TCP: it answers every participant's masked dot-product flow
// with the private criterion, sits out the comparison phase, and
// collects the top-k submissions. q and the addressing must match every
// participant's; criterion stays private to this process.
//
// opts.Timeout (default 2 minutes) composes with ctx — whichever
// deadline expires first wins — and also bounds each blocking receive
// on the TCP mesh.
func RankInitiatorParty(ctx context.Context, q *Questionnaire, criterion Criterion, addrs []string, opts Options) (*InitiatorResult, error) {
	params, o, err := rankPartyParams(q, addrs, opts)
	if err != nil {
		return nil, err
	}
	rec, err := setupRecovery(params, &o, addrs, 0, opts.Seed)
	if err != nil {
		return nil, err
	}
	rng := partyRNG(o.Seed, core.InitiatorSeed(o.Seed))
	subs := []Submission(nil)
	var flagged []int
	res, err := runRankParty(ctx, params, o, addrs, 0, rec, func(ctx context.Context, net transport.Net) error {
		subs, flagged, err = core.RunInitiatorCtx(ctx, params, q, criterion, net, rng)
		return err
	})
	if err != nil {
		return nil, err
	}
	res2 := &InitiatorResult{Submissions: subs, Suspicious: flagged, BytesOnWire: res.BytesOnWire, Rounds: res.Rounds, TraceID: res.TraceID}
	return res2, nil
}

// RankInitiatorPartyCtx is a thin wrapper kept for callers of the old
// split API.
//
// Deprecated: RankInitiatorParty is context-first now; call it
// directly.
func RankInitiatorPartyCtx(ctx context.Context, q *Questionnaire, criterion Criterion, addrs []string, opts Options) (*InitiatorResult, error) {
	return RankInitiatorParty(ctx, q, criterion, addrs, opts)
}

// RankParticipantParty runs participant me's side (1 ≤ me ≤ n, with
// n = len(addrs)−1) of the full framework over real TCP: the masked
// dot-product gain computation with the initiator, the
// identity-unlinkable comparison among the participants, and — when
// ranked in the agreed top k — the profile submission. profile stays
// private to this process; the returned rank is all this party learns.
//
// opts.Timeout (default 2 minutes) composes with ctx — whichever
// deadline expires first wins — and also bounds each blocking receive
// on the TCP mesh.
func RankParticipantParty(ctx context.Context, q *Questionnaire, addrs []string, me int, profile Profile, opts Options) (*ParticipantResult, error) {
	params, o, err := rankPartyParams(q, addrs, opts)
	if err != nil {
		return nil, err
	}
	if me < 1 || me > params.N {
		return nil, fmt.Errorf("groupranking: participant index %d outside [1, %d] (index 0 is the initiator)", me, params.N)
	}
	rec, err := setupRecovery(params, &o, addrs, me, opts.Seed)
	if err != nil {
		return nil, err
	}
	rng := partyRNG(o.Seed, core.ParticipantSeed(o.Seed, me))
	var out core.ParticipantOutput
	res, err := runRankParty(ctx, params, o, addrs, me, rec, func(ctx context.Context, net transport.Net) error {
		out, err = core.RunParticipantCtx(ctx, params, me, q, profile, net, rng)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &ParticipantResult{Rank: out.Rank, BytesOnWire: res.BytesOnWire, Rounds: res.Rounds, TraceID: res.TraceID}, nil
}

// RankParticipantPartyCtx is a thin wrapper kept for callers of the old
// split API.
//
// Deprecated: RankParticipantParty is context-first now; call it
// directly.
func RankParticipantPartyCtx(ctx context.Context, q *Questionnaire, addrs []string, me int, profile Profile, opts Options) (*ParticipantResult, error) {
	return RankParticipantParty(ctx, q, addrs, me, profile, opts)
}

// rankPartyParams resolves the shared options into the framework
// parameters a mesh of len(addrs) endpoints (initiator + n
// participants) agrees on.
func rankPartyParams(q *Questionnaire, addrs []string, opts Options) (core.Params, Options, error) {
	if q == nil {
		return core.Params{}, opts, fmt.Errorf("groupranking: missing questionnaire")
	}
	n := len(addrs) - 1
	if n < 2 {
		return core.Params{}, opts, fmt.Errorf("groupranking: need the initiator plus at least two participants, got %d addresses", len(addrs))
	}
	o, err := opts.withDefaults(n)
	if err != nil {
		return core.Params{}, o, err
	}
	if o.Timeout <= 0 {
		o.Timeout = defaultPartyTimeout
	}
	g, err := group.ByName(o.GroupName)
	if err != nil {
		return core.Params{}, o, err
	}
	params := core.Params{
		N: n, M: q.M(), T: q.T(),
		D1: o.D1, D2: o.D2, H: o.H, K: o.K,
		Group: g, Sorter: o.Sorter, SkipProofs: o.SkipProofs,
		ProveDecryption: o.ProveDecryption, Workers: o.Workers,
		WireCodec: o.WireCodec,
	}
	if err := params.Validate(); err != nil {
		return params, o, err
	}
	return params, o, nil
}

// partyRNG picks this party's randomness source: the in-process
// harness's seed derivation when a seed is set (so seed-fixed
// distributed runs match Rank exactly), crypto/rand otherwise.
func partyRNG(seed, derived string) io.Reader {
	if seed == "" {
		return rand.Reader
	}
	return fixedbig.NewDRBG(derived)
}

// recoverySession is one party's open crash-recovery state: its
// durable journal, the derived session identity, and the epoch this
// process runs as.
type recoverySession struct {
	journal   *journal.Journal
	sessionID string
	epoch     int
}

// sessionID derives the recovery session's identity from everything
// the parties must agree on — the address list and the pinned protocol
// parameters (the same facts the session-establishment round checks) —
// but not the seeds, which are per-party secrets. Same flags ⇒ same ID,
// so a restarted party finds its own journal; changed flags ⇒ a
// different ID, so a stale journal can never leak into a new session.
func sessionID(params core.Params, addrs []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "groupranking-session-v1|%s|n=%d m=%d t=%d d1=%d d2=%d h=%d k=%d|%s|%d|proofs=%t dec=%t",
		strings.Join(addrs, ","),
		params.N, params.M, params.T, params.D1, params.D2, params.H, params.K,
		params.Group.Name(), params.Sorter, !params.SkipProofs, params.ProveDecryption)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// setupRecovery opens this party's journal when Options.Recovery is
// set: it pins the session fingerprint (so mismatched flags fail
// loudly), resolves the seed against the journal (so a restart with an
// empty -seed still re-derives the first life's randomness — o.Seed is
// updated in place), and begins a new epoch. Returns nil with recovery
// disabled.
func setupRecovery(params core.Params, o *Options, addrs []string, me int, rawSeed string) (*recoverySession, error) {
	if o.Recovery == nil {
		return nil, nil
	}
	if o.Recovery.Dir == "" {
		return nil, fmt.Errorf("groupranking: Recovery.Dir must name a journal directory")
	}
	sid := sessionID(params, addrs)
	j, err := journal.Open(journal.SessionPath(o.Recovery.Dir, sid, me))
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*recoverySession, error) {
		j.Close()
		return nil, err
	}
	if err := j.PinSession([]byte(fmt.Sprintf("%s|party=%d", sid, me))); err != nil {
		return fail(err)
	}
	seed, err := resolveRecoverySeed(j, rawSeed, o.Seed)
	if err != nil {
		return fail(err)
	}
	o.Seed = seed
	epoch, err := j.BeginEpoch()
	if err != nil {
		return fail(err)
	}
	return &recoverySession{journal: j, sessionID: sid, epoch: epoch}, nil
}

// resolveRecoverySeed reconciles the operator's explicit seed (raw, as
// passed in Options before defaulting), the freshly drawn one (drawn),
// and the journal: an explicit seed must match the journal; with no
// explicit seed a restart inherits the journaled seed and a first run
// journals the drawn one.
func resolveRecoverySeed(j *journal.Journal, raw, drawn string) (string, error) {
	if raw == "" {
		if s, err := j.SessionSeed(""); err == nil {
			return s, nil // restart: the journaled seed wins
		}
		return j.SessionSeed(drawn) // first run: journal the drawn seed
	}
	return j.SessionSeed(raw)
}

// partyFabric is what the harness needs from either transport: the Net
// itself plus endpoint statistics and teardown.
type partyFabric interface {
	transport.Net
	Stats() transport.Stats
	Close()
}

// runRankParty is the shared deployment harness: it registers the wire
// types, joins the TCP mesh as endpoint me (the plain fail-fast fabric,
// or the reconnecting journal-backed one when recovery is on), threads
// observability and fault injection through, runs the
// session-establishment handshake and then this party's role, and
// reports the endpoint's transport statistics.
func runRankParty(ctx context.Context, params core.Params, o Options, addrs []string, me int, rec *recoverySession, role func(context.Context, transport.Net) error) (*ParticipantResult, error) {
	core.RegisterWire()
	var fab partyFabric
	if rec != nil {
		defer rec.journal.Close()
		rec.journal.SetTelemetry(o.Telemetry)
		rfab, err := transport.NewRecoveringTCPFabric(addrs, me, o.Timeout, transport.RecoverOptions{
			SessionID: rec.sessionID,
			Epoch:     rec.epoch,
			Journal:   rec.journal,
			Grace:     o.Recovery.Grace,
			Heartbeat: o.Recovery.Heartbeat,
			Telemetry: o.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		o.Telemetry.SetHealthSource(rfab)
		fab = rfab
	} else {
		tfab, err := transport.NewTCPFabric(addrs, me, o.Timeout)
		if err != nil {
			return nil, err
		}
		tfab.SetTelemetry(o.Telemetry)
		o.Telemetry.SetHealthSource(tfab)
		fab = tfab
	}
	defer fab.Close()
	ctx, cancel := context.WithTimeout(ctx, o.Timeout)
	defer cancel()
	if o.Observer != nil {
		ctx = obsv.WithRegistry(ctx, o.Observer)
		ctx = obsv.WithParty(ctx, o.Observer.Party(me))
	}
	var net transport.Net = fab
	if o.Faults != nil {
		net = transport.NewFaultNet(fab, *o.Faults)
	}
	// The session round doubles as trace-ID agreement: every party
	// proposes an ID derived from its own seed, party 0's wins, and the
	// agreed ID stamps every span this party exports.
	traceID, err := core.EstablishSessionCtx(ctx, params, me, net, core.DeriveTraceID(o.Seed))
	if err != nil {
		return nil, err
	}
	o.Observer.SetTraceID(traceID)
	if err := role(ctx, net); err != nil {
		return nil, transport.EnsureAbort(err, -1, "framework")
	}
	if rfab, ok := fab.(*transport.RecoveringTCPFabric); ok {
		// This party is done, but a crashed peer may still need what we
		// sent it: keep retransmitting until every peer has acknowledged
		// everything or the blame window closes. Instant when all peers
		// are alive and caught up.
		rfab.Drain(0)
	}
	stats := fab.Stats()
	return &ParticipantResult{BytesOnWire: stats.TotalBytes(), Rounds: stats.DistinctRounds, TraceID: traceID}, nil
}
