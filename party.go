package groupranking

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"

	"groupranking/internal/core"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/obsv"
	"groupranking/internal/transport"
)

// The distributed deployment entry points: one process per party of the
// complete three-phase framework over a real TCP mesh. addrs lists
// every party's listen address with the initiator at addrs[0] and
// participant j at addrs[j]; each process listens on its own slot and
// dials the rest (gob-framed full mesh). Before any crypto is spent the
// parties run a session-establishment round confirming they agree on
// the group, bit widths, k and sorter — a misconfigured party surfaces
// as a typed *AbortError with cause ErrSessionMismatch, not as garbage.
//
// All parties must be started with identical Options (that is what the
// handshake verifies). A non-empty Options.Seed makes the whole run
// deterministic — each party derives its RNG exactly as the in-process
// Rank harness does, so a seed-fixed distributed run produces the same
// Ranks and Submissions as Rank with that seed; an empty seed draws
// fresh local randomness per process.

// InitiatorResult is what RankInitiatorParty learns: the framework's
// initiator-side outcome plus this endpoint's transport statistics.
type InitiatorResult struct {
	// Submissions are the top-k disclosures received, in claimed-rank
	// order, with the initiator's recomputed gains.
	Submissions []Submission
	// Suspicious lists participants whose claimed rank contradicts the
	// recomputed gain (over-claim detection).
	Suspicious []int
	// BytesOnWire counts the bytes this endpoint sent (a distributed
	// party cannot see the whole mesh's traffic).
	BytesOnWire int64
	// Rounds is the number of distinct communication rounds this
	// endpoint took part in.
	Rounds int
}

// ParticipantResult is what RankParticipantParty learns: its own rank
// — nothing about anyone else's — plus this endpoint's transport
// statistics.
type ParticipantResult struct {
	// Rank is this participant's rank (1 = best). If Rank ≤ the agreed
	// k, this party submitted its profile to the initiator.
	Rank int
	// BytesOnWire counts the bytes this endpoint sent.
	BytesOnWire int64
	// Rounds is the number of distinct communication rounds this
	// endpoint took part in.
	Rounds int
}

// RankInitiatorParty runs the initiator's side of the full framework
// over real TCP: it answers every participant's masked dot-product flow
// with the private criterion, sits out the comparison phase, and
// collects the top-k submissions. q and the addressing must match every
// participant's; criterion stays private to this process.
func RankInitiatorParty(q *Questionnaire, criterion Criterion, addrs []string, opts Options) (*InitiatorResult, error) {
	return RankInitiatorPartyCtx(context.Background(), q, criterion, addrs, opts)
}

// RankInitiatorPartyCtx is RankInitiatorParty under caller-supplied
// cancellation; opts.Timeout (default 2 minutes) composes with ctx and
// also bounds each blocking receive on the TCP mesh.
func RankInitiatorPartyCtx(ctx context.Context, q *Questionnaire, criterion Criterion, addrs []string, opts Options) (*InitiatorResult, error) {
	params, o, err := rankPartyParams(q, addrs, opts)
	if err != nil {
		return nil, err
	}
	rng := partyRNG(o.Seed, core.InitiatorSeed(o.Seed))
	subs := []Submission(nil)
	var flagged []int
	res, err := runRankParty(ctx, params, o, addrs, 0, func(ctx context.Context, net transport.Net) error {
		subs, flagged, err = core.RunInitiatorCtx(ctx, params, q, criterion, net, rng)
		return err
	})
	if err != nil {
		return nil, err
	}
	res2 := &InitiatorResult{Submissions: subs, Suspicious: flagged, BytesOnWire: res.BytesOnWire, Rounds: res.Rounds}
	return res2, nil
}

// RankParticipantParty runs participant me's side (1 ≤ me ≤ n, with
// n = len(addrs)−1) of the full framework over real TCP: the masked
// dot-product gain computation with the initiator, the
// identity-unlinkable comparison among the participants, and — when
// ranked in the agreed top k — the profile submission. profile stays
// private to this process; the returned rank is all this party learns.
func RankParticipantParty(q *Questionnaire, addrs []string, me int, profile Profile, opts Options) (*ParticipantResult, error) {
	return RankParticipantPartyCtx(context.Background(), q, addrs, me, profile, opts)
}

// RankParticipantPartyCtx is RankParticipantParty under caller-supplied
// cancellation; opts.Timeout (default 2 minutes) composes with ctx and
// also bounds each blocking receive on the TCP mesh.
func RankParticipantPartyCtx(ctx context.Context, q *Questionnaire, addrs []string, me int, profile Profile, opts Options) (*ParticipantResult, error) {
	params, o, err := rankPartyParams(q, addrs, opts)
	if err != nil {
		return nil, err
	}
	if me < 1 || me > params.N {
		return nil, fmt.Errorf("groupranking: participant index %d outside [1, %d] (index 0 is the initiator)", me, params.N)
	}
	rng := partyRNG(o.Seed, core.ParticipantSeed(o.Seed, me))
	var out core.ParticipantOutput
	res, err := runRankParty(ctx, params, o, addrs, me, func(ctx context.Context, net transport.Net) error {
		out, err = core.RunParticipantCtx(ctx, params, me, q, profile, net, rng)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &ParticipantResult{Rank: out.Rank, BytesOnWire: res.BytesOnWire, Rounds: res.Rounds}, nil
}

// rankPartyParams resolves the shared options into the framework
// parameters a mesh of len(addrs) endpoints (initiator + n
// participants) agrees on.
func rankPartyParams(q *Questionnaire, addrs []string, opts Options) (core.Params, Options, error) {
	if q == nil {
		return core.Params{}, opts, fmt.Errorf("groupranking: missing questionnaire")
	}
	n := len(addrs) - 1
	if n < 2 {
		return core.Params{}, opts, fmt.Errorf("groupranking: need the initiator plus at least two participants, got %d addresses", len(addrs))
	}
	o, err := opts.withDefaults(n)
	if err != nil {
		return core.Params{}, o, err
	}
	if o.Timeout <= 0 {
		o.Timeout = defaultPartyTimeout
	}
	g, err := group.ByName(o.GroupName)
	if err != nil {
		return core.Params{}, o, err
	}
	params := core.Params{
		N: n, M: q.M(), T: q.T(),
		D1: o.D1, D2: o.D2, H: o.H, K: o.K,
		Group: g, Sorter: o.Sorter, SkipProofs: o.SkipProofs,
		ProveDecryption: o.ProveDecryption, Workers: o.Workers,
	}
	if err := params.Validate(); err != nil {
		return params, o, err
	}
	return params, o, nil
}

// partyRNG picks this party's randomness source: the in-process
// harness's seed derivation when a seed is set (so seed-fixed
// distributed runs match Rank exactly), crypto/rand otherwise.
func partyRNG(seed, derived string) io.Reader {
	if seed == "" {
		return rand.Reader
	}
	return fixedbig.NewDRBG(derived)
}

// runRankParty is the shared deployment harness: it registers the wire
// types, joins the TCP mesh as endpoint me, threads observability and
// fault injection through, runs the session-establishment handshake and
// then this party's role, and reports the endpoint's transport
// statistics.
func runRankParty(ctx context.Context, params core.Params, o Options, addrs []string, me int, role func(context.Context, transport.Net) error) (*ParticipantResult, error) {
	core.RegisterWire()
	fab, err := transport.NewTCPFabric(addrs, me, o.Timeout)
	if err != nil {
		return nil, err
	}
	defer fab.Close()
	ctx, cancel := context.WithTimeout(ctx, o.Timeout)
	defer cancel()
	if o.Observer != nil {
		ctx = obsv.WithRegistry(ctx, o.Observer)
		ctx = obsv.WithParty(ctx, o.Observer.Party(me))
	}
	var net transport.Net = fab
	if o.Faults != nil {
		net = transport.NewFaultNet(fab, *o.Faults)
	}
	if err := core.EstablishSessionCtx(ctx, params, me, net); err != nil {
		return nil, err
	}
	if err := role(ctx, net); err != nil {
		return nil, transport.EnsureAbort(err, -1, "framework")
	}
	stats := fab.Stats()
	return &ParticipantResult{BytesOnWire: stats.TotalBytes(), Rounds: stats.DistinctRounds}, nil
}
