package groupranking

import (
	"context"
	"errors"
	"sync"
	"testing"

	"groupranking/internal/transport"
)

// runDistributed runs the full framework as one initiator plus
// len(profiles) participant goroutines over a localhost TCP mesh —
// exactly what separate rankparty processes would do — and returns the
// initiator's view plus every participant's self-computed rank.
func runDistributed(t *testing.T, crit Criterion, profiles []Profile, opts Options) (*InitiatorResult, []int) {
	t.Helper()
	q := demoQuestionnaire(t)
	addrs, err := transport.FreeLoopbackAddrs(len(profiles) + 1)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg       sync.WaitGroup
		initRes  *InitiatorResult
		initErr  error
		ranks    = make([]int, len(profiles))
		partErrs = make([]error, len(profiles))
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		initRes, initErr = RankInitiatorParty(context.Background(), q, crit, addrs, opts)
	}()
	for j := 1; j <= len(profiles); j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RankParticipantParty(context.Background(), q, addrs, j, profiles[j-1], opts)
			if err != nil {
				partErrs[j-1] = err
				return
			}
			ranks[j-1] = res.Rank
		}()
	}
	wg.Wait()
	if initErr != nil {
		t.Fatalf("initiator: %v", initErr)
	}
	for j, err := range partErrs {
		if err != nil {
			t.Fatalf("participant %d: %v", j+1, err)
		}
	}
	return initRes, ranks
}

// TestRankPartyMatchesInProcess is the deployment-correctness anchor:
// a seed-fixed distributed run (one initiator + three participants over
// real localhost TCP) must produce byte-identical Ranks and Submissions
// to the in-process Rank harness with the same seed — for both phase-2
// sorters and for both a DL and an EC group.
func TestRankPartyMatchesInProcess(t *testing.T) {
	cases := []struct {
		name   string
		sorter Sorter
		group  string
	}{
		{"unlinkable-dl", Unlinkable, "toy-dl-256"},
		{"unlinkable-ec", Unlinkable, "secp160r1"},
		{"secret-sharing-dl", SecretSharing, "toy-dl-256"},
		{"secret-sharing-ec", SecretSharing, "secp160r1"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && tc.group == "secp160r1" {
				t.Skip("EC groups are slow; covered by the full run")
			}
			t.Parallel()
			q := demoQuestionnaire(t)
			crit, profiles := demoData(t)
			profiles = profiles[:3]
			opts := fastOpts("tcp-equiv-" + tc.name)
			opts.Sorter = tc.sorter
			opts.GroupName = tc.group

			want, err := Rank(context.Background(), q, crit, profiles, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, ranks := runDistributed(t, crit, profiles, opts)

			for j, r := range ranks {
				if r != want.Ranks[j] {
					t.Errorf("participant %d: distributed rank %d, in-process %d", j+1, r, want.Ranks[j])
				}
			}
			if len(got.Submissions) != len(want.Submissions) {
				t.Fatalf("got %d submissions, in-process run got %d", len(got.Submissions), len(want.Submissions))
			}
			for i, s := range got.Submissions {
				w := want.Submissions[i]
				if s.Participant != w.Participant || s.ClaimedRank != w.ClaimedRank {
					t.Errorf("submission %d: got participant %d rank %d, want participant %d rank %d",
						i, s.Participant, s.ClaimedRank, w.Participant, w.ClaimedRank)
				}
				if len(s.Profile.Values) != len(w.Profile.Values) {
					t.Fatalf("submission %d: profile length %d vs %d", i, len(s.Profile.Values), len(w.Profile.Values))
				}
				for a := range s.Profile.Values {
					if s.Profile.Values[a] != w.Profile.Values[a] {
						t.Errorf("submission %d attribute %d: got %d, want %d", i, a, s.Profile.Values[a], w.Profile.Values[a])
					}
				}
				if s.Gain.Cmp(w.Gain) != 0 {
					t.Errorf("submission %d: recomputed gain %v, want %v", i, s.Gain, w.Gain)
				}
			}
			if len(got.Suspicious) != len(want.Suspicious) {
				t.Errorf("got %d suspicious parties, want %d", len(got.Suspicious), len(want.Suspicious))
			}
		})
	}
}

// TestRankPartySessionMismatch starts one participant with a different
// top-k cut: the pre-crypto handshake must abort every party with a
// typed *transport.AbortError carrying ErrSessionMismatch — no crypto
// round ever runs against the misconfigured mesh.
func TestRankPartySessionMismatch(t *testing.T) {
	t.Parallel()
	q := demoQuestionnaire(t)
	crit, profiles := demoData(t)
	profiles = profiles[:3]
	addrs, err := transport.FreeLoopbackAddrs(len(profiles) + 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts("tcp-mismatch")
	opts.GroupName = "toy-dl-256"

	errs := make([]error, len(profiles)+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0] = RankInitiatorParty(context.Background(), q, crit, addrs, opts)
	}()
	for j := 1; j <= len(profiles); j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := opts
			if j == 2 {
				o.K = o.K + 1 // the misconfigured deployment
			}
			_, errs[j] = RankParticipantParty(context.Background(), q, addrs, j, profiles[j-1], o)
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("party %d completed despite the parameter mismatch", i)
		}
		var abort *transport.AbortError
		if !errors.As(err, &abort) {
			t.Errorf("party %d: error %v is not a typed abort", i, err)
		}
	}
	// The misconfigured party deterministically sees everyone else
	// disagreeing with it; peers may race its teardown, so only its own
	// diagnosis is pinned.
	if !errors.Is(errs[2], ErrSessionMismatch) {
		t.Errorf("misconfigured party: error %v does not carry ErrSessionMismatch", errs[2])
	}
	mismatched := 0
	for _, err := range errs {
		if errors.Is(err, ErrSessionMismatch) {
			mismatched++
		}
	}
	if mismatched < 2 {
		t.Errorf("only %d parties diagnosed the session mismatch", mismatched)
	}
}

// TestRankPartyValidation pins the entry points' argument checking.
func TestRankPartyValidation(t *testing.T) {
	t.Parallel()
	q := demoQuestionnaire(t)
	crit, profiles := demoData(t)
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"}

	if _, err := RankInitiatorParty(context.Background(), nil, crit, addrs, fastOpts("v")); err == nil {
		t.Error("nil questionnaire accepted")
	}
	if _, err := RankInitiatorParty(context.Background(), q, crit, addrs[:2], fastOpts("v")); err == nil {
		t.Error("two-address mesh accepted (needs initiator plus two participants)")
	}
	for _, me := range []int{0, -1, len(addrs)} {
		if _, err := RankParticipantParty(context.Background(), q, addrs, me, profiles[0], fastOpts("v")); err == nil {
			t.Errorf("participant index %d accepted", me)
		}
	}
	bad := fastOpts("v")
	bad.GroupName = "no-such-group"
	if _, err := RankInitiatorParty(context.Background(), q, crit, addrs, bad); err == nil {
		t.Error("unknown group accepted")
	}
}
