package groupranking

import (
	"fmt"
	"time"
)

// Runtime bundles the knobs that tune HOW a run executes — deadlines,
// parallelism, fault injection, observability, crash recovery — as
// opposed to WHAT is computed (group, bit widths, k, sorter: those live
// in Options / SortOptions directly). Options and SortOptions embed it,
// so the fields read the same as before (opts.Timeout, opts.Observer);
// the rankd service config (internal/service.Config) embeds the same
// struct verbatim instead of re-declaring the knobs.
type Runtime struct {
	// Timeout bounds the whole run; 0 means the entry point's default
	// (no deadline in-process, 2 minutes for the distributed parties,
	// where it also bounds each blocking receive and write on the mesh).
	// When the deadline fires, every party aborts with a typed error
	// instead of hanging.
	Timeout time.Duration
	// Workers bounds the goroutines each party's crypto hot loops fan
	// out on: 0 uses every CPU, 1 forces the serial reference path.
	// Randomness is drawn serially regardless, so rankings, transcripts
	// and operation counts are identical at every setting.
	Workers int
	// Recovery, when non-nil, enables the crash-recovery runtime for the
	// distributed framework parties (RankInitiatorParty /
	// RankParticipantParty): the party journals the session durably,
	// rides out peer disconnects by reconnecting, and — restarted with
	// the same flags and journal directory — resumes an in-flight
	// session instead of forcing a full abort. Nil (the default) keeps
	// the fail-fast transport; in-process runs and the sorting entry
	// points ignore it entirely.
	Recovery *RecoveryOptions
	// Faults, when non-nil, injects deterministic message faults (drops,
	// duplicates, reorders, corruption, link severs, party crashes) into
	// the run for robustness testing. See FaultPlan. The sorting entry
	// points ignore it.
	Faults *FaultPlan
	// Observer, when non-nil, records per-party phase spans and crypto/
	// communication counters for the run (party 0 is the initiator,
	// parties 1..n the participants). On abort the partially filled
	// Observer still holds every span up to the failure.
	Observer *Observer
	// Telemetry, when non-nil, streams runtime health metrics (transport
	// round cadence, redials, retransmissions, heartbeat RTT, journal
	// latency) into a registry that can be scraped live while the run is
	// in flight. Only the distributed party entry points feed it;
	// in-process runs have no runtime underneath to measure.
	Telemetry *Telemetry
}

// validate rejects nonsense runtime settings at the public entry point
// instead of letting them silently change meaning deeper in the stack:
// a negative Timeout would otherwise be "defaulted" like zero, a
// negative Workers would be treated as serial, and a negative
// Recovery.Grace would blame a reconnecting peer instantly. The checks
// mirror rankparty's flag validation, so the library and the CLI reject
// the same inputs with the same meaning.
func (r Runtime) validate() error {
	if r.Timeout < 0 {
		return fmt.Errorf("groupranking: Timeout %v is negative (0 means the default deadline)", r.Timeout)
	}
	if r.Workers < 0 {
		return fmt.Errorf("groupranking: workers=%d negative (0 means every CPU)", r.Workers)
	}
	if r.Recovery != nil {
		if r.Recovery.Grace < 0 {
			return fmt.Errorf("groupranking: Recovery.Grace %v is negative (0 means the 15s default)", r.Recovery.Grace)
		}
		if r.Recovery.Heartbeat < 0 {
			return fmt.Errorf("groupranking: Recovery.Heartbeat %v is negative (0 means the 250ms default)", r.Recovery.Heartbeat)
		}
	}
	return nil
}
