package groupranking

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"math/big"
	"time"

	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/obsv"
	"groupranking/internal/transport"
	"groupranking/internal/unlinksort"
)

// SortOptions tunes UnlinkableSort.
type SortOptions struct {
	// GroupName picks the DDH group (default secp160r1).
	GroupName string
	// Bits is the value bit width; 0 derives it from the largest value.
	Bits int
	// Seed makes the run deterministic; empty draws a fresh random seed.
	Seed string
	// Timeout bounds the run. For UnlinkableSort, 0 means no deadline;
	// for UnlinkableSortParty it also bounds each blocking receive on the
	// TCP mesh (default 2 minutes there). On expiry every party aborts
	// with a typed *transport.AbortError instead of hanging.
	Timeout time.Duration
	// Observer, when non-nil, records per-party phase spans and crypto/
	// communication counters. UnlinkableSort fills one party per value;
	// UnlinkableSortParty fills only this party's slot.
	Observer *Observer
	// Workers bounds the goroutines each party's crypto hot loops fan
	// out on: 0 uses every CPU, 1 forces the serial reference path.
	// Results are identical at every setting.
	Workers int
}

// UnlinkableSort runs the paper's identity-unlinkable multiparty sorting
// protocol over the given values, one in-process party per value, and
// returns each party's rank (1 = largest; equal values share a rank).
//
// The privacy property this simulates: each party learns only its own
// rank, and an adversary controlling up to n−2 parties cannot link an
// honest party's value to its identity as long as that party's rank
// stays hidden.
func UnlinkableSort(values []uint64, opts SortOptions) ([]int, error) {
	if len(values) < 2 {
		return nil, fmt.Errorf("groupranking: need at least two values, got %d", len(values))
	}
	if opts.GroupName == "" {
		opts.GroupName = "secp160r1"
	}
	if opts.Bits == 0 {
		for _, v := range values {
			if b := big.NewInt(0).SetUint64(v).BitLen(); b > opts.Bits {
				opts.Bits = b
			}
		}
		if opts.Bits == 0 {
			opts.Bits = 1
		}
	}
	if opts.Seed == "" {
		var raw [16]byte
		if _, err := rand.Read(raw[:]); err != nil {
			return nil, fmt.Errorf("groupranking: drawing seed: %w", err)
		}
		opts.Seed = hex.EncodeToString(raw[:])
	}
	g, err := group.ByName(opts.GroupName)
	if err != nil {
		return nil, err
	}
	betas := make([]*big.Int, len(values))
	for i, v := range values {
		betas[i] = new(big.Int).SetUint64(v)
	}
	ctx := obsv.WithRegistry(context.Background(), opts.Observer)
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	results, _, err := unlinksort.RunCtx(ctx, unlinksort.Config{Group: g, L: opts.Bits, Workers: opts.Workers}, betas, opts.Seed, nil)
	if err != nil {
		return nil, err
	}
	ranks := make([]int, len(results))
	for i, r := range results {
		ranks[i] = r.Rank
	}
	return ranks, nil
}

// UnlinkableSortParty runs one party of the identity-unlinkable sorting
// protocol over real TCP: addrs lists every party's listen address
// (this party listens on addrs[me]), value is this party's private
// input, and the returned rank is all this party learns. All parties
// must agree on opts.Bits (it is required here: unlike UnlinkableSort,
// no single process sees all values to derive a width from) and call
// concurrently. This is the deployment entry point for the paper's
// fully distributed setting.
func UnlinkableSortParty(addrs []string, me int, value uint64, opts SortOptions) (int, error) {
	if opts.Bits <= 0 {
		return 0, fmt.Errorf("groupranking: distributed sorting requires an agreed Bits value")
	}
	if opts.GroupName == "" {
		opts.GroupName = "secp160r1"
	}
	g, err := group.ByName(opts.GroupName)
	if err != nil {
		return 0, err
	}
	unlinksort.RegisterWire()
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	fab, err := transport.NewTCPFabric(addrs, me, timeout)
	if err != nil {
		return 0, err
	}
	defer fab.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if opts.Observer != nil {
		ctx = obsv.WithRegistry(ctx, opts.Observer)
		ctx = obsv.WithParty(ctx, opts.Observer.Party(me))
	}
	var rng io.Reader = rand.Reader
	if opts.Seed != "" {
		rng = fixedbig.NewDRBG(fmt.Sprintf("%s-party-%d", opts.Seed, me))
	}
	res, err := unlinksort.PartyCtx(ctx, unlinksort.Config{Group: g, L: opts.Bits, Workers: opts.Workers}, me, fab,
		new(big.Int).SetUint64(value), rng)
	if err != nil {
		return 0, err
	}
	return res.Rank, nil
}
