package groupranking

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/obsv"
	"groupranking/internal/transport"
	"groupranking/internal/unlinksort"
)

// SortOptions tunes UnlinkableSort.
type SortOptions struct {
	// GroupName picks the DDH group (default secp160r1).
	GroupName string
	// Bits is the value bit width; 0 derives it from the largest value.
	Bits int
	// Seed makes the run deterministic; empty draws a fresh random seed.
	Seed string

	// Runtime bundles the execution knobs shared with Options. The
	// sorting entry points honor Timeout (0 means no deadline
	// in-process, 2 minutes for UnlinkableSortParty, where it also
	// bounds each blocking receive on the TCP mesh), Workers and
	// Observer (UnlinkableSort fills one party per value;
	// UnlinkableSortParty only this party's slot); Recovery, Faults and
	// Telemetry apply to the full framework only and are ignored here.
	Runtime
}

// SortResult is the outcome of an in-process sorting run with the same
// transport statistics Result reports for the full framework.
type SortResult struct {
	// Ranks holds each party's rank (1 = largest; equal values share a
	// rank).
	Ranks []int
	// BytesOnWire is the total traffic across all parties.
	BytesOnWire int64
	// Rounds is the number of distinct communication rounds used.
	Rounds int
}

// UnlinkableSort runs the paper's identity-unlinkable multiparty sorting
// protocol over the given values, one in-process party per value. The
// returned SortResult carries each party's rank (1 = largest; equal
// values share a rank) plus the transport statistics the framework's
// Result exposes.
//
// The privacy property this simulates: each party learns only its own
// rank, and an adversary controlling up to n−2 parties cannot link an
// honest party's value to its identity as long as that party's rank
// stays hidden.
//
// The run aborts cleanly when ctx is done; opts.Timeout, when set,
// composes with ctx — whichever deadline expires first wins.
func UnlinkableSort(ctx context.Context, values []uint64, opts SortOptions) (*SortResult, error) {
	o, err := opts.withDefaults(values)
	if err != nil {
		return nil, err
	}
	g, err := group.ByName(o.GroupName)
	if err != nil {
		return nil, err
	}
	betas := make([]*big.Int, len(values))
	for i, v := range values {
		betas[i] = new(big.Int).SetUint64(v)
	}
	ctx = obsv.WithRegistry(ctx, o.Observer)
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	results, fab, err := unlinksort.RunCtx(ctx, unlinksort.Config{Group: g, L: o.Bits, Workers: o.Workers}, betas, o.Seed, nil)
	if err != nil {
		return nil, err
	}
	ranks := make([]int, len(results))
	for i, r := range results {
		ranks[i] = r.Rank
	}
	stats := fab.Stats()
	return &SortResult{
		Ranks:       ranks,
		BytesOnWire: stats.TotalBytes(),
		Rounds:      stats.DistinctRounds,
	}, nil
}

// UnlinkableSortCtx is a thin wrapper kept for callers of the old split
// API.
//
// Deprecated: UnlinkableSort is context-first now; call it directly.
func UnlinkableSortCtx(ctx context.Context, values []uint64, opts SortOptions) (*SortResult, error) {
	return UnlinkableSort(ctx, values, opts)
}

// UnlinkableSortStats is a thin wrapper kept for callers of the old
// split API, from when UnlinkableSort returned bare ranks.
//
// Deprecated: UnlinkableSort returns the full SortResult; call it
// directly.
func UnlinkableSortStats(values []uint64, opts SortOptions) (*SortResult, error) {
	return UnlinkableSort(context.Background(), values, opts)
}

// UnlinkableSortParty runs one party of the identity-unlinkable sorting
// protocol over real TCP: addrs lists every party's listen address
// (this party listens on addrs[me]), value is this party's private
// input, and the returned rank is all this party learns. All parties
// must agree on opts.Bits (it is required here: unlike UnlinkableSort,
// no single process sees all values to derive a width from) and call
// concurrently. This is the deployment entry point for the paper's
// standalone sorting primitive; RankParticipantParty is its counterpart
// for the full framework.
//
// opts.Timeout (default 2 minutes) composes with ctx — whichever
// deadline expires first wins.
func UnlinkableSortParty(ctx context.Context, addrs []string, me int, value uint64, opts SortOptions) (int, error) {
	o, err := opts.withPartyDefaults()
	if err != nil {
		return 0, err
	}
	g, err := group.ByName(o.GroupName)
	if err != nil {
		return 0, err
	}
	unlinksort.RegisterWire()
	fab, err := transport.NewTCPFabric(addrs, me, o.Timeout)
	if err != nil {
		return 0, err
	}
	defer fab.Close()
	ctx, cancel := context.WithTimeout(ctx, o.Timeout)
	defer cancel()
	if o.Observer != nil {
		ctx = obsv.WithRegistry(ctx, o.Observer)
		ctx = obsv.WithParty(ctx, o.Observer.Party(me))
	}
	var rng io.Reader = rand.Reader
	if o.Seed != "" {
		rng = fixedbig.NewDRBG(fmt.Sprintf("%s-party-%d", o.Seed, me))
	}
	res, err := unlinksort.PartyCtx(ctx, unlinksort.Config{Group: g, L: o.Bits, Workers: o.Workers}, me, fab,
		new(big.Int).SetUint64(value), rng)
	if err != nil {
		return 0, err
	}
	return res.Rank, nil
}

// UnlinkableSortPartyCtx is a thin wrapper kept for callers of the old
// split API.
//
// Deprecated: UnlinkableSortParty is context-first now; call it
// directly.
func UnlinkableSortPartyCtx(ctx context.Context, addrs []string, me int, value uint64, opts SortOptions) (int, error) {
	return UnlinkableSortParty(ctx, addrs, me, value, opts)
}
