package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"groupranking/internal/transport"
	"groupranking/internal/unlinksort"
)

// buildBinary compiles the sortparty command once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sortparty")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sortparty: %v\n%s", err, out)
	}
	return bin
}

type partyResult struct {
	out  []byte
	err  error
	code int
}

func startParty(bin string, addrs []string, me int, value uint64, groupName string, bits int, timeout time.Duration) (*exec.Cmd, *bytes.Buffer) {
	cmd := exec.Command(bin,
		"-addrs", strings.Join(addrs, ","),
		"-me", fmt.Sprint(me),
		"-value", fmt.Sprint(value),
		"-bits", fmt.Sprint(bits),
		"-group", groupName,
		"-seed", "sortparty-test",
		"-timeout", timeout.String(),
	)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	return cmd, &buf
}

// TestThreePartiesComplete is the happy path: three OS processes rank
// their values over loopback TCP and each exits zero with its rank.
func TestThreePartiesComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in short mode")
	}
	bin := buildBinary(t)
	addrs, err := transport.FreeLoopbackAddrs(3)
	if err != nil {
		t.Fatal(err)
	}
	values := []uint64{42, 97, 13}
	wantRank := []int{2, 1, 3}
	results := make([]partyResult, 3)
	var wg sync.WaitGroup
	for me := 0; me < 3; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			cmd, buf := startParty(bin, addrs, me, values[me], "toy-dl-256", 8, 30*time.Second)
			err := cmd.Run()
			results[me] = partyResult{out: buf.Bytes(), err: err, code: cmd.ProcessState.ExitCode()}
		}()
	}
	wg.Wait()
	for me, r := range results {
		if r.code != 0 {
			t.Fatalf("party %d exited %d: %s", me, r.code, r.out)
		}
		want := fmt.Sprintf("ranks #%d", wantRank[me])
		if !strings.Contains(string(r.out), want) {
			t.Errorf("party %d output %q does not contain %q", me, r.out, want)
		}
	}
}

// TestSurvivorsAbortWhenPeerKilled lets one of three parties die right
// after joining the mesh: the two surviving OS processes must exit
// non-zero with a diagnostic naming the dead party — not hang, not
// print a rank. The victim endpoint lives in the test process so its
// death is deterministic (a timer-based kill of a third process races
// against group setup and protocol completion).
func TestSurvivorsAbortWhenPeerKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in short mode")
	}
	bin := buildBinary(t)
	addrs, err := transport.FreeLoopbackAddrs(3)
	if err != nil {
		t.Fatal(err)
	}
	const victim = 1
	values := []uint64{42, 97, 13}
	results := make([]partyResult, 3)
	cmds := make([]*exec.Cmd, 3)
	bufs := make([]*bytes.Buffer, 3)
	for me := 0; me < 3; me++ {
		if me == victim {
			continue
		}
		cmds[me], bufs[me] = startParty(bin, addrs, me, values[me], "toy-dl-256", 8, 10*time.Second)
		if err := cmds[me].Start(); err != nil {
			t.Fatal(err)
		}
	}
	// The victim joins the mesh, then dies without sending a single
	// protocol message — exactly how a party killed right after
	// connecting appears to its peers.
	unlinksort.RegisterWire()
	vic, err := transport.NewTCPFabric(addrs, victim, 10*time.Second)
	if err != nil {
		t.Fatalf("victim could not join the mesh: %v", err)
	}
	vic.Close()

	var wg sync.WaitGroup
	for me := 0; me < 3; me++ {
		if me == victim {
			continue
		}
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := cmds[me].Wait()
			results[me] = partyResult{out: bufs[me].Bytes(), err: err, code: cmds[me].ProcessState.ExitCode()}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		for _, c := range cmds {
			if c != nil && c.Process != nil {
				c.Process.Kill()
			}
		}
		t.Fatal("survivors hung after peer death")
	}
	for me, r := range results {
		if me == victim {
			continue
		}
		if r.code == 0 {
			t.Errorf("party %d exited zero after peer death: %s", me, r.out)
			continue
		}
		out := string(r.out)
		if !strings.Contains(out, "aborting") {
			t.Errorf("party %d gave no abort diagnostic: %q", me, out)
		}
		if strings.Contains(out, "ranks #") {
			t.Errorf("party %d printed a rank despite the abort: %q", me, out)
		}
		if !strings.Contains(out, fmt.Sprintf("party %d", victim)) {
			t.Errorf("party %d did not name the dead party %d: %q", me, victim, out)
		}
	}
	_ = os.Remove(bin)
}
