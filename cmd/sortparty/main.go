// Command sortparty runs ONE party of the identity-unlinkable
// multiparty sorting protocol over real TCP, so n separate processes
// (or machines) can privately rank their values — the paper's fully
// distributed deployment.
//
// Start one process per party with the same address list:
//
//	sortparty -addrs 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 -me 0 -value 42 -bits 16
//	sortparty -addrs 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 -me 1 -value 97 -bits 16
//	sortparty -addrs 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 -me 2 -value 13 -bits 16
//
// Each process prints only its own rank; no value ever leaves a
// process unencrypted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"groupranking"
	"groupranking/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("sortparty: ")
	var (
		addrsFlag = flag.String("addrs", "", "comma-separated listen addresses of all parties, in index order")
		me        = flag.Int("me", -1, "this party's index into -addrs")
		value     = flag.Uint64("value", 0, "this party's private value")
		bits      = flag.Int("bits", 16, "agreed bit width of all values")
		groupName = flag.String("group", "secp160r1", "agreed DDH group")
		seed      = flag.String("seed", "", "deterministic seed (testing only; empty = crypto/rand)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "protocol deadline and per-receive bound")
		workers   = flag.Int("workers", 0, "goroutines for this party's crypto hot loops (0 = all CPUs, 1 = serial)")
		traceFile = flag.String("trace", "", "write this party's JSONL span trace to this file (- for stderr); written even on abort")
		metrics   = flag.Bool("metrics", false, "print this party's per-phase summary table to stderr")
	)
	flag.Parse()

	addrs := strings.Split(*addrsFlag, ",")
	if *addrsFlag == "" || len(addrs) < 2 {
		log.Print("need -addrs with at least two comma-separated addresses")
		return 2
	}
	if *me < 0 || *me >= len(addrs) {
		log.Printf("-me %d outside the address list (%d entries)", *me, len(addrs))
		return 2
	}

	var obs *groupranking.Observer
	if *traceFile != "" || *metrics {
		obs = groupranking.NewObserver()
	}
	report := func() {
		if obs == nil {
			return
		}
		if *traceFile != "" {
			out := os.Stderr
			if *traceFile != "-" {
				f, err := os.Create(*traceFile)
				if err != nil {
					log.Printf("trace: %v", err)
				} else {
					defer f.Close()
					out = f
				}
			}
			if err := obs.WriteJSONL(out); err != nil {
				log.Printf("trace: %v", err)
			}
		}
		if *metrics {
			obs.WriteSummary(os.Stderr)
		}
	}

	rank, err := groupranking.UnlinkableSortParty(context.Background(), addrs, *me, *value, groupranking.SortOptions{
		Bits:      *bits,
		GroupName: *groupName,
		Seed:      *seed,
		Runtime: groupranking.Runtime{
			Timeout:  *timeout,
			Observer: obs,
			Workers:  *workers,
		},
	})
	report()
	if err != nil {
		// A peer failure carries the abort protocol's diagnosis: which
		// party failed, in which phase, waiting on which round.
		var abort *transport.AbortError
		if errors.As(err, &abort) {
			switch {
			case errors.Is(err, transport.ErrPeerDown) && abort.Party >= 0 && abort.Party < len(addrs):
				log.Printf("aborting: party %d (address %s) is down — %v", abort.Party, addrs[abort.Party], err)
			case errors.Is(err, transport.ErrTimeout):
				log.Printf("aborting: timed out waiting for party %d — %v", abort.Party, err)
			default:
				log.Printf("aborting: %v", err)
			}
			return 1
		}
		log.Print(err)
		return 1
	}
	fmt.Printf("party %d: my value ranks #%d among %d parties (1 = largest)\n", *me, rank, len(addrs))
	return 0
}
