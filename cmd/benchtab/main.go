// Command benchtab regenerates every table and figure of the paper's
// evaluation (Section VII) and the complexity table of Section VI-B.
//
// Per-participant computation figures (Fig. 2(a)–(d), Fig. 3(a)) are
// produced by the calibrated cost model: the exact operation counts of
// the implemented protocols multiplied by primitive timings measured on
// this machine at startup. Fig. 3(b) replays synthetic communication
// traces — validated against real protocol traces in the test suite —
// over the discrete-event network simulator (80 nodes, 320 edges,
// 2 Mbps / 50 ms links, the paper's NS2 setup).
//
// Usage:
//
//	benchtab -fig 2a            # one figure as TSV
//	benchtab -table complexity  # the Section VI-B comparison table
//	benchtab -all               # everything
//	benchtab -fig 2a -real      # additionally run the real protocols
//	                            # at small n as a cross-check
//	benchtab -json BENCH_groupranking.json
//	                            # the machine-readable perf snapshot:
//	                            # instrumented small-n runs as JSON
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"groupranking"
	"groupranking/internal/benchtab"
	"groupranking/internal/fixedbig"
)

// emitSortRow runs the standalone sorting primitive at size n and
// prints one TSV cost row from the same transport statistics Rank
// reports, so both public layers can be compared like for like.
func emitSortRow(n, bits int, groupName string, workers int) {
	values := make([]uint64, n)
	rng := fixedbig.NewDRBG(fmt.Sprintf("benchtab-sort-%d-%d", n, bits))
	for i := range values {
		v, err := fixedbig.RandBits(rng, bits)
		if err != nil {
			log.Fatal(err)
		}
		values[i] = v.Uint64()
	}
	start := time.Now()
	res, err := groupranking.UnlinkableSort(context.Background(), values, groupranking.SortOptions{
		GroupName: groupName,
		Bits:      bits,
		Seed:      "benchtab-sort",
		Runtime:   groupranking.Runtime{Workers: workers},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("# standalone unlinkable sort: real run, all parties in-process")
	fmt.Println("n\tbits\tgroup\tbytes_on_wire\trounds\twall")
	fmt.Printf("%d\t%d\t%s\t%d\t%d\t%s\n", n, bits, groupName, res.BytesOnWire, res.Rounds, time.Since(start).Round(time.Millisecond))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtab: ")
	fig := flag.String("fig", "", "figure to regenerate: 2a, 2b, 2c, 2d, 3a, 3b")
	table := flag.String("table", "", "table to regenerate: complexity")
	all := flag.Bool("all", false, "regenerate every figure and table")
	real := flag.Bool("real", false, "also run real protocols at small n as a cross-check")
	jsonOut := flag.String("json", "", "write the machine-readable perf snapshot to this file (- for stdout) and exit")
	workers := flag.Int("workers", 0, "goroutines per party for the real protocol runs (0 = all CPUs, 1 = serial)")
	sortN := flag.Int("sort", 0, "run a real n-party standalone unlinkable sort and print its cost row (TSV) — the same BytesOnWire/Rounds accounting Rank reports")
	sortBits := flag.Int("sort-bits", 16, "value bit width for -sort")
	groupName := flag.String("group", "toy-dl-256", "DDH group for -sort")
	flag.Parse()

	if *sortN > 0 {
		emitSortRow(*sortN, *sortBits, *groupName, *workers)
		return
	}

	if *jsonOut != "" {
		// The snapshot runs real instrumented protocols and needs no
		// primitive-timing calibration, so skip the startup measurement.
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := benchtab.WriteSnapshot(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	r, err := benchtab.New(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	r.Workers = *workers
	run := func(name string) {
		if err := r.Emit(name, *real); err != nil {
			log.Fatal(err)
		}
	}
	switch {
	case *all:
		for _, name := range benchtab.All() {
			run(name)
			fmt.Println()
		}
	case *fig != "":
		run("fig" + *fig)
	case *table != "":
		run("table-" + *table)
	default:
		flag.Usage()
		fmt.Fprintf(os.Stderr, "\navailable: %v\n", benchtab.All())
		os.Exit(2)
	}
}
