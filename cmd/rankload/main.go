// Command rankload drives a rankd daemon mesh with many concurrent
// ranking sessions through the public submit/poll API and reports
// throughput (sessions/sec) and latency (p50/p99). It is the
// acceptance harness for the service deployment: every session is
// seeded and its outcome is checked against the plaintext ground
// truth, and with -metrics the initiator daemon's /metrics endpoint is
// scraped afterwards to assert the whole run shared ONE mesh
// connection per peer pair (mux_link_connects_total == 1), no matter
// how many sessions ran concurrently.
//
//	rankload -apis http://127.0.0.1:9441,http://127.0.0.1:9442,http://127.0.0.1:9443,http://127.0.0.1:9444 \
//	         -sessions 100 -concurrency 16 -metrics http://127.0.0.1:9451
//
// Exits non-zero if any session fails verification or the
// one-connection-per-pair assertion does not hold.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"regexp"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"groupranking"
	"groupranking/internal/api"
)

func main() {
	os.Exit(run())
}

// sessionOutcome is one driven session's measurement.
type sessionOutcome struct {
	latency time.Duration
	err     error
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("rankload: ")
	var (
		apisFlag    = flag.String("apis", "", "comma-separated daemon API base URLs in mesh order; index 0 is the initiator daemon")
		sessions    = flag.Int("sessions", 100, "total sessions to drive")
		concurrency = flag.Int("concurrency", 16, "sessions in flight at once")
		groupName   = flag.String("group", "toy-dl-256", "DDH group for the driven sessions")
		k           = flag.Int("k", 2, "top-k cut for the driven sessions")
		timeout     = flag.Duration("timeout", 5*time.Minute, "overall deadline for the whole load run")
		metricsURL  = flag.String("metrics", "", "initiator daemon's admin base URL; scrape /metrics afterwards and assert one mesh connection per peer pair")
	)
	flag.Parse()

	apis := strings.Split(*apisFlag, ",")
	if *apisFlag == "" || len(apis) < 3 {
		log.Print("need -apis with the initiator daemon plus at least two participant daemons (three URLs)")
		return 2
	}
	if *sessions < 1 || *concurrency < 1 {
		log.Print("need -sessions and -concurrency of at least 1")
		return 2
	}
	n := len(apis) - 1 // participants

	q, err := groupranking.NewQuestionnaire([]groupranking.Attribute{
		{Name: "age", Kind: groupranking.EqualTo},
		{Name: "activity", Kind: groupranking.GreaterThan},
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	clients := make([]*groupranking.Client, len(apis))
	hc := &http.Client{Timeout: 30 * time.Second}
	for i, base := range apis {
		// Retry shed/drain rejections with backoff: a load generator
		// pushing past the admission cap should queue, not fail.
		clients[i] = groupranking.NewClient(base, hc).WithRetry(groupranking.RetryPolicy{MaxAttempts: 8})
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	log.Printf("driving %d sessions (%d concurrent) across the %d-daemon mesh", *sessions, *concurrency, len(apis))
	start := time.Now()
	outcomes := make([]sessionOutcome, *sessions)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outcomes[i] = driveSession(ctx, clients, q, i, n, *k, *groupName)
			}
		}()
	}
	for i := 0; i < *sessions; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	latencies := make([]time.Duration, 0, *sessions)
	failed := 0
	for i, out := range outcomes {
		if out.err != nil {
			failed++
			if failed <= 5 {
				log.Printf("session %d: %v", i, out.err)
			}
			continue
		}
		latencies = append(latencies, out.latency)
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		p50 := latencies[len(latencies)/2]
		p99 := latencies[min(len(latencies)-1, len(latencies)*99/100)]
		fmt.Printf("rankload: %d/%d sessions ok in %v — %.1f sessions/sec, p50 %v, p99 %v\n",
			len(latencies), *sessions, wall.Round(time.Millisecond),
			float64(len(latencies))/wall.Seconds(),
			p50.Round(time.Millisecond), p99.Round(time.Millisecond))
	}
	if failed > 0 {
		log.Printf("%d of %d sessions failed", failed, *sessions)
		return 1
	}
	if *metricsURL != "" {
		if err := assertOneLinkPerPeer(ctx, hc, *metricsURL, len(apis)-1); err != nil {
			log.Print(err)
			return 1
		}
	}
	return 0
}

// driveSession runs one complete session: create at the initiator
// daemon (retrying through the admission cap), submit every
// participant's profile to its own daemon, poll the result, and check
// the top-k submissions against the plaintext ground truth.
func driveSession(ctx context.Context, clients []*groupranking.Client, q *groupranking.Questionnaire, i, n, k int, groupName string) sessionOutcome {
	criterion := groupranking.Criterion{Values: []int64{30, 0}, Weights: []int64{2, 1}}
	profiles := make([]groupranking.Profile, n)
	for j := range profiles {
		profiles[j] = groupranking.Profile{Values: []int64{
			int64(10 + (i+7*j)%50),
			int64((13*i + 29*j) % 100),
		}}
	}
	spec := groupranking.SessionSpec{
		Attributes: []groupranking.ClientAttribute{
			{Name: "age", Kind: groupranking.AttrEqualTo},
			{Name: "activity", Kind: groupranking.AttrGreaterThan},
		},
		Criterion: groupranking.ClientCriterion{Values: criterion.Values, Weights: criterion.Weights},
		K:         k, D1: 7, D2: 3, H: 5,
		GroupName: groupName,
		Seed:      fmt.Sprintf("load-%d", i),
	}
	start := time.Now()
	id, err := createWithRetry(ctx, clients[0], spec)
	if err != nil {
		return sessionOutcome{err: fmt.Errorf("create: %w", err)}
	}
	for j := 1; j < len(clients); j++ {
		if err := clients[j].Submit(ctx, id, profiles[j-1].Values); err != nil {
			return sessionOutcome{err: fmt.Errorf("submit to daemon %d: %w", j, err)}
		}
	}
	res, err := clients[0].WaitResult(ctx, id, 5*time.Millisecond)
	if err != nil {
		return sessionOutcome{err: fmt.Errorf("result: %w", err)}
	}
	latency := time.Since(start)
	if res.State != groupranking.SessionDone {
		return sessionOutcome{err: fmt.Errorf("session ended %s: %s", res.State, res.Error)}
	}
	if err := verify(q, criterion, profiles, res.Submissions, k); err != nil {
		return sessionOutcome{err: err}
	}
	return sessionOutcome{latency: latency}
}

// createWithRetry retries session creation through admission-cap
// rejections and daemon startup (connection refused) with backoff.
func createWithRetry(ctx context.Context, c *groupranking.Client, spec groupranking.SessionSpec) (string, error) {
	backoff := 20 * time.Millisecond
	for {
		id, err := c.CreateSession(ctx, spec)
		if err == nil {
			return id, nil
		}
		var apiErr *groupranking.APIError
		transient := groupranking.IsAdmissionFull(err) || !errors.As(err, &apiErr)
		if !transient {
			return "", err
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("%w (last attempt: %v)", ctx.Err(), err)
		case <-time.After(backoff):
		}
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// verify checks the initiator-side submissions against the plaintext
// ground truth rankload itself generated: exactly the top-k
// participants submitted, each with its true rank and its own profile.
func verify(q *groupranking.Questionnaire, criterion groupranking.Criterion, profiles []groupranking.Profile, subs []api.Submission, k int) error {
	expected, err := groupranking.ExpectedRanks(q, criterion, profiles)
	if err != nil {
		return err
	}
	want := make(map[int]int) // participant -> true rank
	for j, r := range expected {
		if r <= k {
			want[j] = r
		}
	}
	if len(subs) != len(want) {
		return fmt.Errorf("got %d submissions, the ground truth has %d participants in the top %d", len(subs), len(want), k)
	}
	for _, s := range subs {
		r, ok := want[s.Participant]
		if !ok {
			return fmt.Errorf("participant %d submitted but is not in the top %d", s.Participant, k)
		}
		if s.ClaimedRank != r {
			return fmt.Errorf("participant %d claimed rank %d, ground truth says %d", s.Participant, s.ClaimedRank, r)
		}
		if !slices.Equal(s.Values, profiles[s.Participant].Values) {
			return fmt.Errorf("participant %d's submitted profile %v does not match its input %v", s.Participant, s.Values, profiles[s.Participant].Values)
		}
	}
	return nil
}

// assertOneLinkPerPeer scrapes the daemon's Prometheus endpoint and
// checks the session mux dialed each peer exactly once for the whole
// run — the tentpole property: N concurrent sessions, one connection
// per peer pair.
func assertOneLinkPerPeer(ctx context.Context, hc *http.Client, base string, peers int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("scraping %s/metrics: %w", base, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return err
	}
	re := regexp.MustCompile(`(?m)^mux_link_connects_total\{peer="(\d+)"\} (\d+)$`)
	matches := re.FindAllStringSubmatch(string(raw), -1)
	if len(matches) != peers {
		return fmt.Errorf("mux_link_connects_total covers %d peers, want %d", len(matches), peers)
	}
	for _, m := range matches {
		v, _ := strconv.Atoi(m[2])
		if v != 1 {
			return fmt.Errorf("peer %s was dialed %d times; every session must share one connection per peer pair", m[1], v)
		}
		fmt.Printf("rankload: mux_link_connects_total{peer=%q} = %s (one shared connection)\n", m[1], m[2])
	}
	return nil
}
