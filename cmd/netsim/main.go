// Command netsim drives the discrete-event network simulator directly:
// it builds the paper's random topology (Section VII: delete edges from
// a complete graph until the target count, keeping connectivity),
// prints its statistics, and optionally replays one framework's
// synthetic communication trace.
//
// Usage:
//
//	netsim -nodes 80 -edges 320                 # topology statistics
//	netsim -nodes 80 -edges 320 -n 25 -replay   # one Fig. 3(b) cell
package main

import (
	"flag"
	"fmt"
	"log"

	"groupranking/internal/costmodel"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/netsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsim: ")
	var (
		nodes     = flag.Int("nodes", 80, "topology nodes")
		edges     = flag.Int("edges", 320, "topology edges")
		seed      = flag.String("seed", "netsim", "topology seed")
		replay    = flag.Bool("replay", false, "replay a framework trace")
		n         = flag.Int("n", 25, "participants for -replay")
		groupName = flag.String("group", "secp160r1", "group for -replay")
		bandwidth = flag.Float64("mbps", 2, "link bandwidth in Mbps")
		latency   = flag.Float64("latency", 0.050, "link latency in seconds")
	)
	flag.Parse()

	rng := fixedbig.NewDRBG(*seed)
	topo, err := netsim.NewRandomTopology(*nodes, *edges, rng)
	if err != nil {
		log.Fatal(err)
	}
	paths := topo.Paths()
	maxHops, sumHops, pairs := 0, 0, 0
	for a := 0; a < topo.Nodes(); a++ {
		for b := a + 1; b < topo.Nodes(); b++ {
			h := len(paths[a][b]) - 1
			sumHops += h
			pairs++
			if h > maxHops {
				maxHops = h
			}
		}
	}
	fmt.Printf("topology: %d nodes, %d edges, connected=%v\n", topo.Nodes(), topo.Edges(), topo.Connected())
	fmt.Printf("shortest paths: avg %.2f hops, diameter %d\n", float64(sumHops)/float64(pairs), maxHops)

	if !*replay {
		return
	}
	g, err := group.ByName(*groupName)
	if err != nil {
		log.Fatal(err)
	}
	s := costmodel.PaperDefaults()
	s.N = *n
	assign, err := netsim.RandomAssignment(topo, s.N+1, fixedbig.NewDRBG(*seed+"-assign"))
	if err != nil {
		log.Fatal(err)
	}
	link := netsim.LinkSpec{BandwidthBps: *bandwidth * 1e6, LatencySec: *latency}
	rep, err := netsim.NewReplay(topo, link, assign)
	if err != nil {
		log.Fatal(err)
	}
	ctBytes := 2 * g.ElementLen()
	scalarBytes := (g.Order().BitLen() + 7) / 8
	trace := costmodel.OursTrace(s, ctBytes, g.ElementLen(), scalarBytes, 16)
	sec, err := rep.Run(trace, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: n=%d group=%s → network time %.2f s (%d trace events, computation excluded)\n",
		s.N, g.Name(), sec, len(trace))
}
