// Command netsim drives the discrete-event network simulator directly:
// it builds the paper's random topology (Section VII: delete edges from
// a complete graph until the target count, keeping connectivity),
// prints its statistics, and optionally replays one framework's
// synthetic communication trace.
//
// Usage:
//
//	netsim -nodes 80 -edges 320                 # topology statistics
//	netsim -nodes 80 -edges 320 -n 25 -replay   # one Fig. 3(b) cell
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"groupranking/internal/costmodel"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/netsim"
	"groupranking/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsim: ")
	var (
		nodes     = flag.Int("nodes", 80, "topology nodes")
		edges     = flag.Int("edges", 320, "topology edges")
		seed      = flag.String("seed", "netsim", "topology seed")
		replay    = flag.Bool("replay", false, "replay a framework trace")
		n         = flag.Int("n", 25, "participants for -replay")
		groupName = flag.String("group", "secp160r1", "group for -replay")
		bandwidth = flag.Float64("mbps", 2, "link bandwidth in Mbps")
		latency   = flag.Float64("latency", 0.050, "link latency in seconds")
		traceFile = flag.String("trace", "", "with -replay: write the synthetic message trace as JSONL to this file (- for stdout)")
		metrics   = flag.Bool("metrics", false, "with -replay: print the per-round traffic table")
	)
	flag.Parse()

	rng := fixedbig.NewDRBG(*seed)
	topo, err := netsim.NewRandomTopology(*nodes, *edges, rng)
	if err != nil {
		log.Fatal(err)
	}
	paths := topo.Paths()
	maxHops, sumHops, pairs := 0, 0, 0
	for a := 0; a < topo.Nodes(); a++ {
		for b := a + 1; b < topo.Nodes(); b++ {
			h := len(paths[a][b]) - 1
			sumHops += h
			pairs++
			if h > maxHops {
				maxHops = h
			}
		}
	}
	fmt.Printf("topology: %d nodes, %d edges, connected=%v\n", topo.Nodes(), topo.Edges(), topo.Connected())
	fmt.Printf("shortest paths: avg %.2f hops, diameter %d\n", float64(sumHops)/float64(pairs), maxHops)

	if !*replay {
		return
	}
	g, err := group.ByName(*groupName)
	if err != nil {
		log.Fatal(err)
	}
	s := costmodel.PaperDefaults()
	s.N = *n
	assign, err := netsim.RandomAssignment(topo, s.N+1, fixedbig.NewDRBG(*seed+"-assign"))
	if err != nil {
		log.Fatal(err)
	}
	link := netsim.LinkSpec{BandwidthBps: *bandwidth * 1e6, LatencySec: *latency}
	rep, err := netsim.NewReplay(topo, link, assign)
	if err != nil {
		log.Fatal(err)
	}
	ctBytes := 2 * g.ElementLen()
	scalarBytes := (g.Order().BitLen() + 7) / 8
	trace := costmodel.OursTrace(s, ctBytes, g.ElementLen(), scalarBytes, 16)
	if *traceFile != "" {
		if err := writeTrace(*traceFile, trace); err != nil {
			log.Fatal(err)
		}
	}
	sec, err := rep.Run(trace, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: n=%d group=%s → network time %.2f s (%d trace events, computation excluded)\n",
		s.N, g.Name(), sec, len(trace))
	if *metrics {
		printRoundTable(trace)
	}
}

// writeTrace dumps the synthetic trace one JSON event per line, the
// same shape transport.Event records for real runs.
func writeTrace(path string, trace []transport.Event) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	for _, ev := range trace {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// printRoundTable aggregates the trace by round — the same breakdown
// transport.Stats.PerRound reports for real fabrics.
func printRoundTable(trace []transport.Event) {
	perRound := make(map[int]transport.RoundStats)
	for _, ev := range trace {
		rs := perRound[ev.Round]
		rs.Messages++
		rs.Bytes += int64(ev.Bytes)
		perRound[ev.Round] = rs
	}
	rounds := make([]int, 0, len(perRound))
	for r := range perRound {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "round\tmsgs\tbytes")
	for _, r := range rounds {
		rs := perRound[r]
		fmt.Fprintf(w, "%d\t%d\t%d\n", r, rs.Messages, rs.Bytes)
	}
	w.Flush()
}
