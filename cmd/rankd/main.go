// Command rankd runs ONE daemon of the ranking-as-a-service
// deployment: a long-running coordinator process hosting many
// concurrent privacy-preserving ranking sessions over a single
// multiplexed connection per peer daemon. Index 0 of -addrs is the
// initiator daemon (clients create sessions and poll initiator-side
// results there); indices 1..n are participant daemons (each takes its
// own participant's private profile submissions).
//
//	rankd -addrs :9401,:9402,:9403,:9404 -me 0 -api :9441 -admin :9451
//	rankd -addrs :9401,:9402,:9403,:9404 -me 1 -api :9442
//	...
//
// Clients drive the mesh through the submit/poll HTTP API on -api
// (POST /v1/sessions at daemon 0, POST /v1/sessions/{id}/submit at
// each participant daemon, GET /v1/sessions/{id}/result anywhere; see
// the groupranking.Client type). -admin serves live telemetry —
// /metrics includes the mux link counters that prove N concurrent
// sessions share one connection per peer pair, plus the service
// session lifecycle counters.
//
// With -journal DIR the daemon is durable: every session's transcript
// and lifecycle land in append-only journals under DIR, and a
// restarted daemon (same flags, same DIR) re-adopts its sessions —
// finished results stay pollable, interrupted sessions resume
// byte-identically. An unusable DIR (unwritable, not a directory, or
// locked by another live daemon for the same slot) exits 2 at startup.
//
// SIGINT/SIGTERM drains the daemon gracefully: admission closes (new
// work is rejected with the typed "draining" code and a Retry-After),
// running sessions get -drain to finish, and whatever remains is
// parked in the journals for the next life to pick up (without
// -journal it simply aborts). A second signal forces shutdown
// immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"groupranking"
	"groupranking/internal/service"
	"groupranking/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("rankd: ")
	var (
		addrsFlag      = flag.String("addrs", "", "comma-separated mesh listen addresses of all daemons in index order; index 0 is the initiator daemon")
		me             = flag.Int("me", -1, "this daemon's index into -addrs (0 = initiator daemon)")
		apiAddr        = flag.String("api", "", "serve the session HTTP API on this address")
		adminAddr      = flag.String("admin", "", "serve live telemetry on this address: /metrics, /healthz, /debug/pprof")
		maxSessions    = flag.Int("max-sessions", 64, "admission cap: most concurrent non-terminal sessions this daemon hosts")
		resultTTL      = flag.Duration("result-ttl", 5*time.Minute, "how long a finished session's result stays pollable")
		sessionTimeout = flag.Duration("session-timeout", 2*time.Minute, "default (and ceiling) per-session budget")
		workers        = flag.Int("workers", 0, "goroutines per session's crypto hot loops (0 = all CPUs, 1 = serial)")
		queueCap       = flag.Int("queue-cap", 0, "per-session receive budget in frames per peer link (0 = the transport default)")
		journalDir     = flag.String("journal", "", "durable mode: journal sessions under this directory and resume them across restarts")
		grace          = flag.Duration("grace", 0, "durable mode: how long a disconnected peer daemon may take to come back before sessions blame it (0 = the transport default)")
		drainBudget    = flag.Duration("drain", 20*time.Second, "graceful-drain budget on SIGINT/SIGTERM: how long running sessions may finish before the rest is parked (or aborted without -journal)")
	)
	flag.Parse()

	addrs := strings.Split(*addrsFlag, ",")
	if *addrsFlag == "" || len(addrs) < 3 {
		log.Print("need -addrs with the initiator daemon plus at least two participant daemons (three addresses)")
		return 2
	}
	if *apiAddr == "" {
		log.Print("need -api with the session HTTP API listen address")
		return 2
	}
	cfg := service.Config{
		Addrs:       addrs,
		Me:          *me,
		MaxSessions: *maxSessions,
		ResultTTL:   *resultTTL,
		QueueCap:    *queueCap,
		Runtime: groupranking.Runtime{
			Timeout: *sessionTimeout,
			Workers: *workers,
		},
	}
	if *journalDir != "" {
		cfg.Recovery = &groupranking.RecoveryOptions{Dir: *journalDir, Grace: *grace}
	}
	var adminSrv *http.Server
	if *adminAddr != "" {
		tel := groupranking.NewTelemetry()
		cfg.Telemetry = tel
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Printf("-admin: %v", err)
			return 2
		}
		adminSrv = &http.Server{Handler: telemetry.AdminMux(tel)}
		go adminSrv.Serve(ln)
		defer adminSrv.Close()
		log.Printf("admin endpoint on http://%s (/metrics, /healthz, /debug/pprof)", ln.Addr())
	}

	// Bind the API listener before joining the mesh so a bad -api fails
	// fast, but only serve once the daemon is up.
	apiLn, err := net.Listen("tcp", *apiAddr)
	if err != nil {
		log.Printf("-api: %v", err)
		return 2
	}
	defer apiLn.Close()

	log.Printf("daemon %d joining the %d-daemon mesh...", *me, len(addrs))
	d, err := service.NewDaemon(cfg)
	if err != nil {
		log.Print(err)
		if errors.Is(err, service.ErrBadJournalDir) {
			return 2 // operator mistake, not a runtime fault
		}
		return 1
	}
	defer d.Close()
	if *journalDir != "" {
		log.Printf("durable mode: journals under %s", *journalDir)
	}

	srv := &http.Server{Handler: d.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(apiLn) }()
	role := "participant"
	if d.Me() == 0 {
		role = "initiator"
	}
	log.Printf("%s daemon serving the session API on http://%s (cap %d sessions, result TTL %v)",
		role, apiLn.Addr(), *maxSessions, *resultTTL)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("caught %v; draining (admission closed, %v budget; signal again to force)", s, *drainBudget)
		drained := make(chan int, 1)
		go func() { drained <- d.Drain(*drainBudget) }()
		select {
		case left := <-drained:
			if left > 0 && *journalDir != "" {
				log.Printf("parked %d unfinished sessions for the next life to resume", left)
			} else if left > 0 {
				log.Printf("aborting %d unfinished sessions (no -journal to park them in)", left)
			}
		case s2 := <-sig:
			log.Printf("caught %v; forcing shutdown", s2)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("api server: %v", err)
			return 1
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	d.Close()
	return 0
}
