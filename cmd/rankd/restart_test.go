package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"groupranking"
	"groupranking/internal/transport"
)

// The daemon-level chaos suite (make chaos-rankd): real rankd
// processes, real SIGKILL. One of four daemons is killed with many
// sessions in flight and restarted with the same flags and journal
// directory; every session must end byte-identical to the in-process
// ground truth — never a wrong result — and the mesh must then drain
// to a clean exit 0 on SIGTERM.

// buildRankd compiles the rankd command once per test.
func buildRankd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rankd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building rankd: %v\n%s", err, out)
	}
	return bin
}

// chaosMesh is one 4-process rankd deployment plus its API clients.
type chaosMesh struct {
	bin      string
	meshAddr []string
	apiAddr  []string
	jdirs    []string
	cmds     []*exec.Cmd
	bufs     []*bytes.Buffer
	clients  []*groupranking.Client
	hc       *http.Client
}

// startDaemon (re)launches slot me with its permanent flags.
func (m *chaosMesh) startDaemon(t *testing.T, me int) {
	t.Helper()
	cmd := exec.Command(m.bin,
		"-addrs", strings.Join(m.meshAddr, ","),
		"-me", fmt.Sprint(me),
		"-api", m.apiAddr[me],
		"-journal", m.jdirs[me],
		"-grace", "60s",
		"-session-timeout", "120s",
		"-drain", "30s",
	)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon %d: %v", me, err)
	}
	m.cmds[me], m.bufs[me] = cmd, &buf
}

// awaitAPI polls slot me's session API until the daemon answers (it
// only serves once the mesh is joined).
func (m *chaosMesh) awaitAPI(t *testing.T, me int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := m.hc.Get("http://" + m.apiAddr[me] + "/v1/sessions")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon %d's API never came up:\n%s", me, m.bufs[me].String())
}

func startChaosMesh(t *testing.T) *chaosMesh {
	t.Helper()
	addrs, err := transport.FreeLoopbackAddrs(8)
	if err != nil {
		t.Fatal(err)
	}
	m := &chaosMesh{
		bin:      buildRankd(t),
		meshAddr: addrs[:4],
		apiAddr:  addrs[4:],
		jdirs:    make([]string, 4),
		cmds:     make([]*exec.Cmd, 4),
		bufs:     make([]*bytes.Buffer, 4),
		clients:  make([]*groupranking.Client, 4),
		hc:       &http.Client{Timeout: 10 * time.Second},
	}
	t.Cleanup(m.hc.CloseIdleConnections)
	for me := 0; me < 4; me++ {
		m.jdirs[me] = t.TempDir()
		m.startDaemon(t, me)
		// Retry through the restart window: a poll that lands while the
		// victim is down should back off, not fail the session.
		m.clients[me] = groupranking.NewClient("http://"+m.apiAddr[me], m.hc).
			WithRetry(groupranking.RetryPolicy{MaxAttempts: 8})
	}
	t.Cleanup(func() {
		for _, c := range m.cmds {
			if c != nil && c.Process != nil {
				c.Process.Kill()
				c.Wait()
			}
		}
	})
	for me := 0; me < 4; me++ {
		m.awaitAPI(t, me)
	}
	return m
}

// chaosSpec and chaosProfiles give every session its own distinct
// inputs so a cross-wired recovery (one session resumed with another's
// frames) cannot produce a passing result.
func chaosSpec(i int) groupranking.SessionSpec {
	return groupranking.SessionSpec{
		Attributes: []groupranking.ClientAttribute{
			{Name: "age", Kind: groupranking.AttrEqualTo},
			{Name: "activity", Kind: groupranking.AttrGreaterThan},
		},
		Criterion: groupranking.ClientCriterion{Values: []int64{30, 0}, Weights: []int64{2, 1}},
		K:         2, D1: 7, D2: 3, H: 5,
		GroupName: "toy-dl-256",
		Seed:      fmt.Sprintf("chaos-%d", i),
	}
}

func chaosProfiles(i int) []groupranking.Profile {
	return []groupranking.Profile{
		{Values: []int64{int64(20 + i), int64(40 + 3*i)}},
		{Values: []int64{int64(35 - i), int64(55 + 2*i)}},
		{Values: []int64{int64(28 + 2*i), int64(70 + i)}},
	}
}

// groundTruth runs session i start to finish in process — the
// byte-identity reference the recovered service run must match.
func groundTruth(t *testing.T, i int) *groupranking.Result {
	t.Helper()
	q, err := groupranking.NewQuestionnaire([]groupranking.Attribute{
		{Name: "age", Kind: groupranking.EqualTo},
		{Name: "activity", Kind: groupranking.GreaterThan},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := chaosSpec(i)
	res, err := groupranking.Rank(context.Background(), q,
		groupranking.Criterion{Values: spec.Criterion.Values, Weights: spec.Criterion.Weights},
		chaosProfiles(i), groupranking.Options{
			K: spec.K, D1: spec.D1, D2: spec.D2, H: spec.H,
			GroupName: spec.GroupName,
			Seed:      spec.Seed,
		})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChaosRankdKillRestart is the acceptance test from the issue: 8
// sessions in flight across a 4-process rankd mesh, SIGKILL one
// participant daemon, restart it with the same flags, and require
// every session to complete byte-identical to the in-process ground
// truth; then SIGTERM the whole mesh and require clean exits.
func TestChaosRankdKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos test skipped in short mode")
	}
	m := startChaosMesh(t)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	const sessions = 8
	const victim = 1

	// Launch all sessions: create at daemon 0, then feed every
	// participant daemon its profile. After the last submit every
	// session is live on all four processes.
	ids := make([]string, sessions)
	for i := 0; i < sessions; i++ {
		id, err := m.clients[0].CreateSession(ctx, chaosSpec(i))
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			profiles := chaosProfiles(i)
			for j := 1; j < 4; j++ {
				if err := m.clients[j].Submit(ctx, ids[i], profiles[j-1].Values); err != nil {
					errs[i] = fmt.Errorf("submit %d to daemon %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// SIGKILL the victim with the fleet in flight, then bring up its
	// next life on the same journals. The kernel drops its flock with
	// the process, so the restart must not see a stale lock.
	if err := m.cmds[victim].Process.Kill(); err != nil {
		t.Fatalf("killing daemon %d: %v", victim, err)
	}
	m.cmds[victim].Wait()
	m.startDaemon(t, victim)
	m.awaitAPI(t, victim)

	// Every session must converge on the exact in-process outcome.
	for i := 0; i < sessions; i++ {
		res, err := m.clients[0].WaitResult(ctx, ids[i], 25*time.Millisecond)
		if err != nil {
			t.Fatalf("session %d result: %v", i, err)
		}
		if res.State != groupranking.SessionDone {
			t.Fatalf("session %d ended %q after the kill: %s\nvictim log:\n%s",
				i, res.State, res.Error, m.bufs[victim].String())
		}
		want := groundTruth(t, i)
		if len(res.Submissions) != len(want.Submissions) {
			t.Fatalf("session %d: %d submissions, ground truth has %d", i, len(res.Submissions), len(want.Submissions))
		}
		for k, got := range res.Submissions {
			exp := want.Submissions[k]
			if got.Participant != exp.Participant || got.ClaimedRank != exp.ClaimedRank || got.Gain != exp.Gain.String() {
				t.Errorf("session %d submission %d: participant %d rank %d gain %s, ground truth participant %d rank %d gain %v",
					i, k, got.Participant, got.ClaimedRank, got.Gain, exp.Participant, exp.ClaimedRank, exp.Gain)
			}
		}
		// The victim's own view — served by its second life — must carry
		// the true rank.
		view, err := m.clients[victim].WaitResult(ctx, ids[i], 25*time.Millisecond)
		if err != nil {
			t.Fatalf("session %d view at the restarted daemon: %v", i, err)
		}
		if view.State != groupranking.SessionDone || view.Rank != want.Ranks[victim-1] {
			t.Errorf("session %d at the restarted daemon: state %q rank %d, ground truth rank %d",
				i, view.State, view.Rank, want.Ranks[victim-1])
		}
	}

	// Graceful shutdown: SIGTERM everyone; with every session terminal
	// the drain is instant and every process must exit 0.
	for me := 0; me < 4; me++ {
		if err := m.cmds[me].Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM daemon %d: %v", me, err)
		}
	}
	for me := 0; me < 4; me++ {
		done := make(chan error, 1)
		go func(me int) { done <- m.cmds[me].Wait() }(me)
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("daemon %d did not exit after SIGTERM:\n%s", me, m.bufs[me].String())
		}
		if code := m.cmds[me].ProcessState.ExitCode(); code != 0 {
			t.Errorf("daemon %d exited %d after SIGTERM:\n%s", me, code, m.bufs[me].String())
		}
		m.cmds[me] = nil
	}
}

// TestChaosRankdBadJournalDir: an unusable -journal must be refused at
// startup with exit 2 — the operator-mistake code — before the daemon
// touches the mesh.
func TestChaosRankdBadJournalDir(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in short mode")
	}
	bin := buildRankd(t)
	addrs, err := transport.FreeLoopbackAddrs(4)
	if err != nil {
		t.Fatal(err)
	}
	// A file where the journal directory should be.
	notADir := filepath.Join(t.TempDir(), "occupied")
	if err := exec.Command("cp", "/dev/null", notADir).Run(); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-addrs", strings.Join(addrs[:3], ","),
		"-me", "0",
		"-api", addrs[3],
		"-journal", notADir,
	)
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 2 {
		t.Fatalf("rankd with -journal pointing at a file exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(string(out), "journal directory") {
		t.Fatalf("startup error does not explain the journal directory problem:\n%s", out)
	}
}
