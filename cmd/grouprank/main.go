// Command grouprank runs one instance of the privacy-preserving
// group-ranking framework, either on a JSON scenario file or on a
// randomly generated workload, and prints every party's view.
//
// Usage:
//
//	grouprank -scenario scenario.json
//	grouprank -n 10 -m 6 -t 3 -k 3 -group secp160r1 -seed demo
//
// Scenario file format:
//
//	{
//	  "attributes": [{"name": "age", "kind": "equal-to"},
//	                 {"name": "friends", "kind": "greater-than"}],
//	  "criterion": {"values": [30, 0], "weights": [2, 1]},
//	  "profiles": [[31, 40], [25, 90]],
//	  "k": 1
//	}
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"groupranking"
	"groupranking/internal/fixedbig"
	"groupranking/internal/workload"
)

type scenarioFile struct {
	Attributes []struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	} `json:"attributes"`
	Criterion struct {
		Values  []int64 `json:"values"`
		Weights []int64 `json:"weights"`
	} `json:"criterion"`
	Profiles [][]int64 `json:"profiles"`
	K        int       `json:"k"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("grouprank: ")
	var (
		scenario  = flag.String("scenario", "", "JSON scenario file (overrides -n/-m/-t)")
		preset    = flag.String("preset", "", "named scenario: marketing, matchmaking or recruiting (overrides -m/-t/-d1/-d2)")
		n         = flag.Int("n", 8, "participants (generated workload)")
		m         = flag.Int("m", 4, "attribute dimension (generated workload)")
		t         = flag.Int("t", 2, "number of equal-to attributes (generated workload)")
		k         = flag.Int("k", 3, "top-k cut")
		d1        = flag.Int("d1", 8, "attribute bits")
		d2        = flag.Int("d2", 5, "weight bits")
		h         = flag.Int("h", 8, "mask bits")
		groupName = flag.String("group", "secp160r1", "DDH group (modp-1024/2048/3072, secp160r1/224r1/256r1, toy-dl-256)")
		sorter    = flag.String("sorter", "unlinkable", "phase-2 protocol: unlinkable or secret-sharing")
		seed      = flag.String("seed", "", "deterministic seed (empty = random)")
		timeout   = flag.Duration("timeout", 0, "whole-run deadline (0 = none); expiry aborts cleanly")
		workers   = flag.Int("workers", 0, "goroutines per party for crypto hot loops (0 = all CPUs, 1 = serial)")
		traceFile = flag.String("trace", "", "write a JSONL span trace to this file (- for stderr); on abort the partial trace is still written")
		metrics   = flag.Bool("metrics", false, "print the per-phase observability summary table after the run")

		faultSeed    = flag.Int64("fault-seed", 0, "seed for the fault-injection schedule (reproducible chaos)")
		faultDrop    = flag.Float64("fault-drop", 0, "per-message drop probability [0, 1]")
		faultDup     = flag.Float64("fault-dup", 0, "per-message duplication probability [0, 1]")
		faultReorder = flag.Float64("fault-reorder", 0, "per-message reorder probability [0, 1]")
		faultCorrupt = flag.Float64("fault-corrupt", 0, "per-message corruption probability [0, 1]")
		faultDelay   = flag.Float64("fault-delay", 0, "per-message delay probability [0, 1]")
		crashParty   = flag.Int("fault-crash-party", -1, "party index to crash (-1 = none; 0 = initiator)")
		crashRound   = flag.Int("fault-crash-round", 0, "round at which the crashed party dies")
	)
	flag.Parse()

	var (
		q        *groupranking.Questionnaire
		crit     groupranking.Criterion
		profiles []groupranking.Profile
		err      error
	)
	switch {
	case *scenario != "":
		q, crit, profiles, err = loadScenario(*scenario, k)
	case *preset != "":
		q, crit, profiles, err = fromPreset(*preset, *n, *seed, d1, d2)
	default:
		q, crit, profiles, err = generate(*n, *m, *t, *d1, *d2, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	opts := groupranking.Options{
		GroupName: *groupName,
		K:         *k,
		D1:        *d1, D2: *d2, H: *h,
		Seed:    *seed,
		Runtime: groupranking.Runtime{Timeout: *timeout, Workers: *workers},
	}
	if *faultDrop > 0 || *faultDup > 0 || *faultReorder > 0 || *faultCorrupt > 0 ||
		*faultDelay > 0 || *crashParty >= 0 {
		plan := &groupranking.FaultPlan{
			Seed:      *faultSeed,
			Drop:      *faultDrop,
			Duplicate: *faultDup,
			Reorder:   *faultReorder,
			Corrupt:   *faultCorrupt,
			Delay:     *faultDelay,
		}
		if *crashParty >= 0 {
			plan.Rules = append(plan.Rules, groupranking.CrashAt(*crashParty, *crashRound))
		}
		opts.Faults = plan
		if opts.Timeout == 0 {
			// A lossy run with no deadline could wait forever on a message
			// that was dropped; a default deadline keeps aborts prompt.
			opts.Timeout = 30 * time.Second
		}
	}
	switch *sorter {
	case "unlinkable":
		opts.Sorter = groupranking.Unlinkable
	case "secret-sharing":
		opts.Sorter = groupranking.SecretSharing
	default:
		log.Fatalf("unknown sorter %q", *sorter)
	}

	var obs *groupranking.Observer
	if *traceFile != "" || *metrics {
		obs = groupranking.NewObserver()
		opts.Observer = obs
	}
	writeTrace := func() {
		if *traceFile == "" {
			return
		}
		out := os.Stderr
		if *traceFile != "-" {
			f, err := os.Create(*traceFile)
			if err != nil {
				log.Printf("trace: %v", err)
				return
			}
			defer f.Close()
			out = f
		}
		if err := obs.WriteJSONL(out); err != nil {
			log.Printf("trace: %v", err)
		}
	}

	res, err := groupranking.Rank(context.Background(), q, crit, profiles, opts)
	if err != nil {
		// The Observer outlives the failed run: dump the partial trace so
		// the typed abort diagnostics come with the timeline that led to
		// the failure.
		writeTrace()
		var abort *groupranking.AbortError
		if errors.As(err, &abort) {
			if *metrics {
				obs.WriteSummary(os.Stderr)
			}
			log.Fatalf("run aborted cleanly (party %d, phase %q, round %d): %v",
				abort.Party, abort.Phase, abort.Round, err)
		}
		log.Fatal(err)
	}
	writeTrace()

	fmt.Printf("group: %s, sorter: %s, participants: %d, k: %d\n\n", *groupName, *sorter, len(profiles), opts.K)
	fmt.Println("participant ranks (each participant only learns its own):")
	for j, r := range res.Ranks {
		fmt.Printf("  P%-3d rank %d\n", j+1, r)
	}
	fmt.Println("\ninitiator's received submissions:")
	for _, s := range res.Submissions {
		fmt.Printf("  rank %d: P%d, profile %v, recomputed gain %s\n",
			s.ClaimedRank, s.Participant+1, s.Profile.Values, s.Gain)
	}
	if len(res.Suspicious) > 0 {
		fmt.Printf("\nover-claim detection flagged: %v\n", res.Suspicious)
	}
	fmt.Printf("\ntraffic: %d bytes, %d communication rounds\n", res.BytesOnWire, res.Rounds)
	if *metrics {
		fmt.Println()
		if err := obs.WriteSummary(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func loadScenario(path string, k *int) (*groupranking.Questionnaire, groupranking.Criterion, []groupranking.Profile, error) {
	var empty groupranking.Criterion
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, empty, nil, err
	}
	var sf scenarioFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, empty, nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	attrs := make([]groupranking.Attribute, len(sf.Attributes))
	for i, a := range sf.Attributes {
		attrs[i].Name = a.Name
		switch a.Kind {
		case "equal-to":
			attrs[i].Kind = groupranking.EqualTo
		case "greater-than":
			attrs[i].Kind = groupranking.GreaterThan
		default:
			return nil, empty, nil, fmt.Errorf("attribute %q: unknown kind %q", a.Name, a.Kind)
		}
	}
	q, err := groupranking.NewQuestionnaire(attrs)
	if err != nil {
		return nil, empty, nil, err
	}
	if len(sf.Criterion.Values) != q.M() || len(sf.Criterion.Weights) != q.M() {
		return nil, empty, nil, fmt.Errorf("criterion has %d values and %d weights for %d attributes",
			len(sf.Criterion.Values), len(sf.Criterion.Weights), q.M())
	}
	profiles := make([]groupranking.Profile, len(sf.Profiles))
	for i, vals := range sf.Profiles {
		if len(vals) != q.M() {
			return nil, empty, nil, fmt.Errorf("profile %d has %d values for %d attributes", i, len(vals), q.M())
		}
		profiles[i] = groupranking.Profile{Values: vals}
	}
	if sf.K > 0 {
		*k = sf.K
	}
	return q, groupranking.Criterion{Values: sf.Criterion.Values, Weights: sf.Criterion.Weights}, profiles, nil
}

func generate(n, m, t, d1, d2 int, seed string) (*groupranking.Questionnaire, groupranking.Criterion, []groupranking.Profile, error) {
	var empty groupranking.Criterion
	q, err := workload.Uniform(m, t)
	if err != nil {
		return nil, empty, nil, err
	}
	rng := fixedbig.NewDRBG("grouprank-workload-" + seed)
	crit, err := workload.RandomCriterion(q, d1, d2, rng)
	if err != nil {
		return nil, empty, nil, err
	}
	profiles, err := workload.RandomProfiles(q, n, d1, rng)
	if err != nil {
		return nil, empty, nil, err
	}
	return q, crit, profiles, nil
}

// fromPreset instantiates a named workload preset with n sampled
// participants, adopting the preset's bit widths.
func fromPreset(name string, n int, seed string, d1, d2 *int) (*groupranking.Questionnaire, groupranking.Criterion, []groupranking.Profile, error) {
	var empty groupranking.Criterion
	p, err := workload.PresetByName(name)
	if err != nil {
		return nil, empty, nil, err
	}
	rng := fixedbig.NewDRBG("grouprank-preset-" + name + "-" + seed)
	profiles, err := p.SampleProfiles(n, rng)
	if err != nil {
		return nil, empty, nil, err
	}
	*d1, *d2 = p.Bits()
	return p.Questionnaire(), p.Criterion(), profiles, nil
}
