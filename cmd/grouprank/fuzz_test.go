package main

import (
	"os"
	"path/filepath"
	"testing"
)

func FuzzLoadScenario(f *testing.F) {
	seed, err := os.ReadFile(filepath.Join("testdata", "scenario.json"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"attributes": []}`))
	f.Add([]byte(`{"attributes": [{"name":"x","kind":"equal-to"}], "profiles": [[1],[2]], "criterion": {"values":[1],"weights":[1]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "s.json")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		k := 1
		// Must never panic; errors are fine.
		q, _, profiles, err := loadScenario(path, &k)
		if err != nil {
			return
		}
		// Accepted scenarios must be internally consistent.
		for i, p := range profiles {
			if len(p.Values) != q.M() {
				t.Fatalf("accepted scenario with profile %d of %d values against m=%d", i, len(p.Values), q.M())
			}
		}
	})
}
