package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"groupranking"
)

func TestLoadScenario(t *testing.T) {
	k := 1
	q, crit, profiles, err := loadScenario(filepath.Join("testdata", "scenario.json"), &k)
	if err != nil {
		t.Fatal(err)
	}
	if q.M() != 4 || q.T() != 2 {
		t.Errorf("questionnaire shape m=%d t=%d, want 4, 2", q.M(), q.T())
	}
	if len(profiles) != 4 {
		t.Errorf("got %d profiles", len(profiles))
	}
	if k != 2 {
		t.Errorf("k from file = %d, want 2", k)
	}
	if crit.Weights[0] != 8 {
		t.Errorf("criterion weights %v", crit.Weights)
	}
	// The loaded scenario must actually run.
	res, err := groupranking.Rank(context.Background(), q, crit, profiles, groupranking.Options{
		K: k, D1: 10, D2: 4, H: 6, Seed: "scenario-test", GroupName: "toy-dl-256",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Submissions) != 2 {
		t.Errorf("got %d submissions, want 2", len(res.Submissions))
	}
}

func TestLoadScenarioErrors(t *testing.T) {
	k := 1
	if _, _, _, err := loadScenario("testdata/does-not-exist.json", &k); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := loadScenario(bad, &k); err == nil {
		t.Error("malformed JSON accepted")
	}
	badKind := filepath.Join(t.TempDir(), "kind.json")
	if err := os.WriteFile(badKind, []byte(`{"attributes":[{"name":"x","kind":"weird"}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := loadScenario(badKind, &k); err == nil {
		t.Error("unknown attribute kind accepted")
	}
}

func TestGenerate(t *testing.T) {
	q, crit, profiles, err := generate(5, 6, 3, 8, 5, "gen-test")
	if err != nil {
		t.Fatal(err)
	}
	if q.M() != 6 || q.T() != 3 {
		t.Errorf("shape m=%d t=%d", q.M(), q.T())
	}
	if len(profiles) != 5 || len(crit.Values) != 6 {
		t.Errorf("generated sizes wrong: %d profiles, %d criterion values", len(profiles), len(crit.Values))
	}
	// Deterministic for the same seed.
	_, crit2, _, err := generate(5, 6, 3, 8, 5, "gen-test")
	if err != nil {
		t.Fatal(err)
	}
	for i := range crit.Values {
		if crit.Values[i] != crit2.Values[i] {
			t.Fatal("generation not deterministic for a fixed seed")
		}
	}
}

func TestFromPreset(t *testing.T) {
	d1, d2 := 0, 0
	q, crit, profiles, err := fromPreset("marketing", 6, "test", &d1, &d2)
	if err != nil {
		t.Fatal(err)
	}
	if q.M() != 4 || len(profiles) != 6 || len(crit.Weights) != 4 {
		t.Errorf("preset instantiation wrong: m=%d profiles=%d", q.M(), len(profiles))
	}
	if d1 == 0 || d2 == 0 {
		t.Error("preset bit widths not adopted")
	}
	// The preset workload must run end-to-end.
	res, err := groupranking.Rank(context.Background(), q, crit, profiles, groupranking.Options{
		K: 2, D1: d1, D2: d2, H: 6, Seed: "preset-run", GroupName: "toy-dl-256",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Submissions) == 0 {
		t.Error("no submissions from preset run")
	}
	if _, _, _, err := fromPreset("nope", 3, "x", &d1, &d2); err == nil {
		t.Error("unknown preset accepted")
	}
}
