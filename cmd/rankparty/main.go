// Command rankparty runs ONE party of the complete privacy-preserving
// group-ranking framework over real TCP, so the initiator and the n
// participants can run as separate processes (or machines) — the
// paper's fully distributed deployment of all three phases: masked
// dot-product gain computation, identity-unlinkable comparison, and
// top-k submission with over-claim detection.
//
// Index 0 of -addrs is the initiator; indices 1..n are participants.
// Every process passes the same -addrs, -attrs and protocol parameters
// (a pre-crypto session handshake aborts the run if they disagree);
// the private inputs differ per role:
//
//	rankparty -addrs :9001,:9002,:9003,:9004 -me 0 -attrs age:eq,income:gt \
//	          -values 30,0 -weights 2,1 -k 2        # initiator: criterion + weights
//	rankparty -addrs :9001,:9002,:9003,:9004 -me 1 -attrs age:eq,income:gt \
//	          -values 30,50                          # participant: private profile
//	...
//
// The initiator prints the top-k submissions it received; each
// participant prints only its own rank.
//
// With -journal DIR the party runs under the crash-recovery runtime:
// the session is journaled durably, disconnected peers are redialed
// instead of blamed immediately, and a killed process restarted with
// the same flags resumes the in-flight session from its journal. The
// -fault-* flags inject deterministic message faults into this party's
// endpoint for chaos testing.
//
// With -admin ADDR the party serves live telemetry over HTTP while the
// run is in flight: /metrics (Prometheus text exposition of transport,
// journal and protocol counters), /healthz (per-peer link state, 200
// only when every peer is connected) and /debug/pprof. Traces written
// with -trace carry the run-level trace ID agreed in the session
// handshake; ranktrace merges the per-party files into one timeline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"groupranking"
	"groupranking/internal/telemetry"
	"groupranking/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("rankparty: ")
	var (
		addrsFlag = flag.String("addrs", "", "comma-separated listen addresses of all parties in index order; index 0 is the initiator")
		me        = flag.Int("me", -1, "this party's index into -addrs (0 = initiator)")
		attrsFlag = flag.String("attrs", "", "agreed questionnaire: comma-separated name:kind entries with kind eq or gt (eq entries first)")
		valFlag   = flag.String("values", "", "this party's private values: the criterion (initiator) or the profile (participant)")
		wtFlag    = flag.String("weights", "", "the initiator's private criterion weights (initiator only)")
		k         = flag.Int("k", 3, "agreed top-k cut")
		d1        = flag.Int("d1", 15, "agreed attribute value bits")
		d2        = flag.Int("d2", 10, "agreed weight bits")
		h         = flag.Int("h", 15, "agreed mask bits")
		groupName = flag.String("group", "secp160r1", "agreed DDH group")
		sorter    = flag.String("sorter", "unlinkable", "agreed phase-2 sorter: unlinkable or secret-sharing")
		seed      = flag.String("seed", "", "deterministic seed (testing only; empty = crypto/rand)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "protocol deadline and per-receive bound")
		workers   = flag.Int("workers", 0, "goroutines for this party's crypto hot loops (0 = all CPUs, 1 = serial)")
		traceFile = flag.String("trace", "", "write this party's JSONL span trace to this file (- for stderr); written even on abort")
		metrics   = flag.Bool("metrics", false, "print this party's per-phase summary table to stderr")
		admin     = flag.String("admin", "", "serve live telemetry on this address while the run is in flight: /metrics (Prometheus text), /healthz (per-peer link state), /debug/pprof")
		straggle  = flag.Duration("straggle", 0, "testing: sleep this long at the start of every phase, making this party the run's straggler in the merged trace")

		journalDir = flag.String("journal", "", "enable crash recovery: journal the session durably into this directory; restart with the same flags to resume")
		grace      = flag.Duration("grace", 0, "how long a disconnected peer may take to reconnect before it is blamed (default 15s; needs -journal)")
		heartbeat  = flag.Duration("heartbeat", 0, "link heartbeat interval distinguishing slow peers from dead ones (default 250ms; needs -journal)")
		blameOut   = flag.String("blame-out", "", "on abort, write the blame certificate as JSON to this file (- for stderr) for offline verification")

		faultSeed    = flag.Int64("fault-seed", 0, "seed for the fault-injection schedule (reproducible chaos)")
		faultDrop    = flag.Float64("fault-drop", 0, "per-message drop probability [0, 1]")
		faultDup     = flag.Float64("fault-dup", 0, "per-message duplication probability [0, 1]")
		faultReorder = flag.Float64("fault-reorder", 0, "per-message reorder probability [0, 1]")
		faultCorrupt = flag.Float64("fault-corrupt", 0, "per-message corruption probability [0, 1]")
		faultDelay   = flag.Float64("fault-delay", 0, "per-message delay probability [0, 1]")
		crashParty   = flag.Int("fault-crash-party", -1, "party index to crash (-1 = none; 0 = initiator)")
		crashRound   = flag.Int("fault-crash-round", 0, "round at which the crashed party dies")
		equivocate   = flag.Bool("fault-equivocate", false, "Byzantine demo: THIS party equivocates on its broadcasts (honest peers must abort and blame it)")

		wireCodec = flag.Int("wire-codec", 0, "testing: announce this wire-codec version in session establishment (0 = this build's version); mismatched parties refuse the session")
	)
	flag.Parse()

	if *timeout < 0 {
		log.Printf("-timeout %v is negative (0 means the default deadline)", *timeout)
		return 2
	}
	if *grace < 0 {
		log.Printf("-grace %v is negative (0 means the 15s default)", *grace)
		return 2
	}
	if *heartbeat < 0 {
		log.Printf("-heartbeat %v is negative (0 means the 250ms default)", *heartbeat)
		return 2
	}
	if *straggle < 0 {
		log.Printf("-straggle %v is negative", *straggle)
		return 2
	}

	addrs := strings.Split(*addrsFlag, ",")
	if *addrsFlag == "" || len(addrs) < 3 {
		log.Print("need -addrs with the initiator plus at least two participants (three addresses)")
		return 2
	}
	if *me < 0 || *me >= len(addrs) {
		log.Printf("-me %d outside the address list (%d entries)", *me, len(addrs))
		return 2
	}
	q, err := parseAttrs(*attrsFlag)
	if err != nil {
		log.Print(err)
		return 2
	}
	values, err := parseInts(*valFlag, "-values")
	if err != nil {
		log.Print(err)
		return 2
	}
	if len(values) != q.M() {
		log.Printf("-values has %d entries, -attrs has %d", len(values), q.M())
		return 2
	}

	opts := groupranking.Options{
		GroupName: *groupName,
		K:         *k,
		D1:        *d1, D2: *d2, H: *h,
		Seed:      *seed,
		WireCodec: *wireCodec,
		Runtime:   groupranking.Runtime{Timeout: *timeout, Workers: *workers},
	}
	if *journalDir != "" {
		opts.Recovery = &groupranking.RecoveryOptions{Dir: *journalDir, Grace: *grace, Heartbeat: *heartbeat}
	} else if *grace != 0 || *heartbeat != 0 {
		log.Print("-grace and -heartbeat need -journal (crash recovery is off without a journal directory)")
		return 2
	}
	if *faultDrop > 0 || *faultDup > 0 || *faultReorder > 0 || *faultCorrupt > 0 ||
		*faultDelay > 0 || *crashParty >= 0 || *equivocate {
		plan := &groupranking.FaultPlan{
			Seed:      *faultSeed,
			Drop:      *faultDrop,
			Duplicate: *faultDup,
			Reorder:   *faultReorder,
			Corrupt:   *faultCorrupt,
			Delay:     *faultDelay,
		}
		if *crashParty >= 0 {
			plan.Rules = append(plan.Rules, groupranking.CrashAt(*crashParty, *crashRound))
		}
		if *equivocate {
			// The fault net sits at this party's own endpoint, so the
			// equivocation is injected into this party's outgoing
			// broadcast legs — the honest peers' echo sub-round must
			// catch it and blame this party.
			plan.Rules = append(plan.Rules, groupranking.FaultRule{
				Kind: transport.FaultEquivocate, Round: -1, From: *me, To: -1,
			})
		}
		opts.Faults = plan
	}
	switch *sorter {
	case "unlinkable":
		opts.Sorter = groupranking.Unlinkable
	case "secret-sharing":
		opts.Sorter = groupranking.SecretSharing
	default:
		log.Printf("unknown -sorter %q (want unlinkable or secret-sharing)", *sorter)
		return 2
	}
	// The admin endpoint and the straggler hook both live on the
	// observer, so either flag forces one on.
	var obs *groupranking.Observer
	if *traceFile != "" || *metrics || *admin != "" || *straggle > 0 {
		obs = groupranking.NewObserver()
		opts.Observer = obs
	}
	if *straggle > 0 {
		delay := *straggle
		obs.SetBeginHook(func(party int, phase string) { time.Sleep(delay) })
	}
	if *admin != "" {
		tel := groupranking.NewTelemetry()
		opts.Telemetry = tel
		ln, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Printf("-admin: %v", err)
			return 2
		}
		srv := &http.Server{Handler: telemetry.AdminMux(tel, obs.WritePrometheus)}
		go srv.Serve(ln)
		defer srv.Close()
		log.Printf("admin endpoint on http://%s (/metrics, /healthz, /debug/pprof)", ln.Addr())
	}
	report := func() {
		if obs == nil {
			return
		}
		if *traceFile != "" {
			out := os.Stderr
			if *traceFile != "-" {
				f, err := os.Create(*traceFile)
				if err != nil {
					log.Printf("trace: %v", err)
				} else {
					defer f.Close()
					out = f
				}
			}
			if err := obs.WriteJSONL(out); err != nil {
				log.Printf("trace: %v", err)
			}
		}
		if *metrics {
			obs.WriteSummary(os.Stderr)
		}
	}

	if *me == 0 {
		weights, err := parseInts(*wtFlag, "-weights")
		if err != nil {
			log.Print(err)
			return 2
		}
		if len(weights) != q.M() {
			log.Printf("-weights has %d entries, -attrs has %d", len(weights), q.M())
			return 2
		}
		crit := groupranking.Criterion{Values: values, Weights: weights}
		res, err := groupranking.RankInitiatorParty(context.Background(), q, crit, addrs, opts)
		report()
		if err != nil {
			return fail(err, addrs, *blameOut)
		}
		if obs != nil {
			log.Printf("trace id %s", res.TraceID)
		}
		fmt.Printf("initiator: received %d top-%d submissions over %d rounds (%d bytes sent)\n",
			len(res.Submissions), opts.K, res.Rounds, res.BytesOnWire)
		for _, s := range res.Submissions {
			fmt.Printf("  rank %d: participant %d, profile %v, recomputed gain %v\n",
				s.ClaimedRank, s.Participant+1, s.Profile.Values, s.Gain)
		}
		for _, p := range res.Suspicious {
			fmt.Printf("  SUSPICIOUS: participant %d's claimed rank contradicts its submitted profile\n", p+1)
		}
		return 0
	}

	if *wtFlag != "" {
		log.Print("-weights is initiator-only (participants hold no criterion)")
		return 2
	}
	profile := groupranking.Profile{Values: values}
	res, err := groupranking.RankParticipantParty(context.Background(), q, addrs, *me, profile, opts)
	report()
	if err != nil {
		return fail(err, addrs, *blameOut)
	}
	if obs != nil {
		log.Printf("trace id %s", res.TraceID)
	}
	fmt.Printf("party %d: my gain ranks #%d among %d participants (1 = best)\n", *me, res.Rank, len(addrs)-1)
	if res.Rank <= opts.K {
		fmt.Printf("party %d: ranked in the top %d — profile submitted to the initiator\n", *me, opts.K)
	}
	return 0
}

// fail prints the abort protocol's diagnosis, writes the blame
// certificate (when the abort carries one and -blame-out names a
// destination), and returns the exit code.
func fail(err error, addrs []string, blameOut string) int {
	var abort *transport.AbortError
	if errors.As(err, &abort) {
		switch {
		case errors.Is(err, groupranking.ErrSessionMismatch):
			log.Printf("aborting: session handshake failed — %v", err)
		case errors.Is(err, transport.ErrPeerDown) && abort.Party >= 0 && abort.Party < len(addrs):
			log.Printf("aborting: party %d (address %s) is down — %v", abort.Party, addrs[abort.Party], err)
		case errors.Is(err, transport.ErrTimeout):
			log.Printf("aborting: timed out waiting for party %d — %v", abort.Party, err)
		default:
			log.Printf("aborting: %v", err)
		}
		writeBlame(err, blameOut)
		return 1
	}
	log.Print(err)
	return 1
}

// writeBlame serialises the abort's blame certificate for offline
// verification (internal/blame confirms it with no access to this
// process's protocol state).
func writeBlame(err error, blameOut string) {
	cert := transport.CertOf(err)
	if cert == nil {
		if blameOut != "" {
			log.Print("no blame certificate to write (this abort carries no evidence)")
		}
		return
	}
	log.Printf("blame certificate: %s", cert)
	if blameOut == "" {
		return
	}
	data, merr := cert.MarshalJSON()
	if merr != nil {
		log.Printf("blame certificate: %v", merr)
		return
	}
	data = append(data, '\n')
	if blameOut == "-" {
		os.Stderr.Write(data)
		return
	}
	if werr := os.WriteFile(blameOut, data, 0o644); werr != nil {
		log.Printf("blame certificate: %v", werr)
		return
	}
	log.Printf("blame certificate written to %s", blameOut)
}

// parseAttrs builds the agreed questionnaire from name:kind entries
// ("age:eq,income:gt"); a bare kind ("eq,gt") names attributes a0,a1,…
func parseAttrs(s string) (*groupranking.Questionnaire, error) {
	if s == "" {
		return nil, fmt.Errorf("need -attrs (e.g. -attrs age:eq,income:gt)")
	}
	var attrs []groupranking.Attribute
	for i, entry := range strings.Split(s, ",") {
		name := fmt.Sprintf("a%d", i)
		kind := entry
		if c := strings.SplitN(entry, ":", 2); len(c) == 2 {
			name, kind = c[0], c[1]
		}
		switch kind {
		case "eq":
			attrs = append(attrs, groupranking.Attribute{Name: name, Kind: groupranking.EqualTo})
		case "gt":
			attrs = append(attrs, groupranking.Attribute{Name: name, Kind: groupranking.GreaterThan})
		default:
			return nil, fmt.Errorf("attribute %q: kind %q is not eq or gt", entry, kind)
		}
	}
	return groupranking.NewQuestionnaire(attrs)
}

// parseInts parses a comma-separated int64 list.
func parseInts(s, flagName string) ([]int64, error) {
	if s == "" {
		return nil, fmt.Errorf("need %s (comma-separated integers)", flagName)
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s entry %q: %v", flagName, p, err)
		}
		out[i] = v
	}
	return out, nil
}
