package main

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"groupranking/internal/journal"
	"groupranking/internal/leakcheck"
	"groupranking/internal/transport"
)

// recoveryParty builds the command for one endpoint of a seed-fixed
// mesh, optionally under the crash-recovery runtime (jdir != "").
func recoveryParty(bin string, addrs []string, me int, group, jdir string) (*exec.Cmd, *bytes.Buffer) {
	args := []string{
		"-addrs", strings.Join(addrs, ","),
		"-me", fmt.Sprint(me),
		"-attrs", "age:eq,activity:gt",
		"-k", "2", "-d1", "7", "-d2", "4", "-h", "6",
		"-group", group,
		"-seed", "rankparty-restart-test",
		"-timeout", "120s",
	}
	if jdir != "" {
		args = append(args, "-journal", jdir, "-grace", "45s")
	}
	profiles := []string{"30,50", "25,60", "45,90"}
	if me == 0 {
		args = append(args, "-values", "30,0", "-weights", "2,1")
	} else {
		args = append(args, "-values", profiles[me-1])
	}
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	return cmd, &buf
}

// waitMidSort polls the victim's journal until a phase-2 (sort) message
// appears — rounds [10, 1<<20) are the sort; round 1<<20 is the
// submission — so the kill lands mid-sort, after real crypto has been
// spent and before the session outcome exists.
func waitMidSort(t *testing.T, jdir string, party int) {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	pattern := filepath.Join(jdir, fmt.Sprintf("*-p%d.journal", party))
	for time.Now().Before(deadline) {
		files, _ := filepath.Glob(pattern)
		for _, f := range files {
			recs, err := journal.Scan(f)
			if err != nil {
				continue
			}
			for _, r := range recs {
				if (r.Kind == journal.KindSent || r.Kind == journal.KindRecv) &&
					r.Round >= 10 && r.Round < 1<<20 {
					return
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("victim's journal never reached the sort phase")
}

// TestKillAndRestartMidSort is the crash-recovery acceptance test at
// the process level, on both a DL and an EC group: a participant is
// SIGKILLed mid-sort and restarted with the same flags and journal
// directory; every process must exit zero and every line of output —
// ranks, submissions, even the initiator's byte/round counts — must be
// byte-identical to the fault-free run without recovery enabled.
func TestKillAndRestartMidSort(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in short mode")
	}
	leakcheck.Check(t)
	bin := buildBinary(t)
	for _, group := range []string{"toy-dl-256", "secp160r1"} {
		group := group
		t.Run(group, func(t *testing.T) {
			// Fault-free baseline, recovery off: the reference output.
			baseline := runRestartMesh(t, bin, group, "", -1)

			// Recovery run: same seed, fresh ports, journals on; kill
			// participant 2 mid-sort and restart it.
			const victim = 2
			recovered := runRestartMesh(t, bin, group, t.TempDir(), victim)

			for me := 0; me < 4; me++ {
				if !bytes.Equal(recovered[me], baseline[me]) {
					t.Errorf("party %d output diverged from the fault-free run\n got: %q\nwant: %q",
						me, recovered[me], baseline[me])
				}
			}
		})
	}
}

// runRestartMesh runs one full 4-process session and returns each
// party's output. With victim ≥ 0 (requires jdir) that party is killed
// mid-sort and restarted with identical flags.
func runRestartMesh(t *testing.T, bin, group, jdir string, victim int) [][]byte {
	t.Helper()
	addrs, err := transport.FreeLoopbackAddrs(4)
	if err != nil {
		t.Fatal(err)
	}
	cmds := make([]*exec.Cmd, 4)
	bufs := make([]*bytes.Buffer, 4)
	for me := 0; me < 4; me++ {
		cmds[me], bufs[me] = recoveryParty(bin, addrs, me, group, jdir)
		if err := cmds[me].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, c := range cmds {
			if c != nil && c.Process != nil {
				c.Process.Kill()
			}
		}
	})

	if victim >= 0 {
		waitMidSort(t, jdir, victim)
		if err := cmds[victim].Process.Kill(); err != nil {
			t.Fatalf("killing victim: %v", err)
		}
		cmds[victim].Wait() // reap the corpse; the exit error is the kill
		firstLife := bufs[victim].String()
		if strings.Contains(firstLife, "ranks #") {
			t.Fatalf("victim finished before the kill: %q", firstLife)
		}
		// The restarted process: byte-for-byte the same invocation.
		cmds[victim], bufs[victim] = recoveryParty(bin, addrs, victim, group, jdir)
		if err := cmds[victim].Start(); err != nil {
			t.Fatal(err)
		}
	}

	outs := make([][]byte, 4)
	var wg sync.WaitGroup
	for me := 0; me < 4; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			cmds[me].Wait()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(150 * time.Second):
		t.Fatal("session hung")
	}
	for me := 0; me < 4; me++ {
		outs[me] = bufs[me].Bytes()
		if code := cmds[me].ProcessState.ExitCode(); code != 0 {
			t.Fatalf("party %d exited %d: %s", me, code, outs[me])
		}
	}
	return outs
}
