package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"groupranking/internal/blame"
	"groupranking/internal/core"
	"groupranking/internal/leakcheck"
	"groupranking/internal/tracemerge"
	"groupranking/internal/transport"
)

// buildBinary compiles the rankparty command once per test.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rankparty")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building rankparty: %v\n%s", err, out)
	}
	return bin
}

type partyResult struct {
	out  []byte
	err  error
	code int
}

// startParty builds the command for one endpoint of the demo mesh: the
// initiator (me = 0) holds the criterion and weights, participants hold
// a profile.
func startParty(bin string, addrs []string, me int, timeout time.Duration, extra ...string) (*exec.Cmd, *bytes.Buffer) {
	args := []string{
		"-addrs", strings.Join(addrs, ","),
		"-me", fmt.Sprint(me),
		"-attrs", "age:eq,activity:gt",
		"-k", "2", "-d1", "7", "-d2", "4", "-h", "6",
		"-group", "toy-dl-256",
		"-seed", "rankparty-test",
		"-timeout", timeout.String(),
	}
	profiles := []string{"30,50", "25,60", "45,90"}
	if me == 0 {
		args = append(args, "-values", "30,0", "-weights", "2,1")
	} else {
		args = append(args, "-values", profiles[me-1])
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	return cmd, &buf
}

// TestFourProcessesComplete is the happy path: the initiator and three
// participants run the complete framework as four OS processes over
// loopback TCP; each exits zero, the participants with the expected
// rank, the initiator with the top-2 submissions.
func TestFourProcessesComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in short mode")
	}
	leakcheck.Check(t)
	bin := buildBinary(t)
	addrs, err := transport.FreeLoopbackAddrs(4)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]partyResult, 4)
	var wg sync.WaitGroup
	for me := 0; me < 4; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			cmd, buf := startParty(bin, addrs, me, 60*time.Second)
			err := cmd.Run()
			results[me] = partyResult{out: buf.Bytes(), err: err, code: cmd.ProcessState.ExitCode()}
		}()
	}
	wg.Wait()
	for me, r := range results {
		if r.code != 0 {
			t.Fatalf("party %d exited %d: %s", me, r.code, r.out)
		}
	}
	init := string(results[0].out)
	if !strings.Contains(init, "received 2 top-2 submissions") {
		t.Errorf("initiator output %q does not report the top-2 submissions", init)
	}
	wantRank := []int{1, 2, 3} // ada, ben, cam with the demo inputs
	for me := 1; me < 4; me++ {
		want := fmt.Sprintf("ranks #%d", wantRank[me-1])
		if !strings.Contains(string(results[me].out), want) {
			t.Errorf("party %d output %q does not contain %q", me, results[me].out, want)
		}
	}
}

// TestCodecVersionRefused starts a real four-process mesh where one
// participant announces a different wire-codec version. Session
// establishment must refuse the session on every endpoint — exit
// non-zero with a diagnostic naming the codec field, before any crypto
// phase runs. This is the process-level proof that a cross-build codec
// skew cannot reach the protocol as undecodable frames.
func TestCodecVersionRefused(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in short mode")
	}
	leakcheck.Check(t)
	bin := buildBinary(t)
	addrs, err := transport.FreeLoopbackAddrs(4)
	if err != nil {
		t.Fatal(err)
	}
	const skewed = 2
	results := make([]partyResult, 4)
	var wg sync.WaitGroup
	for me := 0; me < 4; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			var extra []string
			if me == skewed {
				extra = []string{"-wire-codec", "99"}
			}
			cmd, buf := startParty(bin, addrs, me, 30*time.Second, extra...)
			err := cmd.Run()
			results[me] = partyResult{out: buf.Bytes(), err: err, code: cmd.ProcessState.ExitCode()}
		}()
	}
	wg.Wait()
	for me, r := range results {
		if r.code == 0 {
			t.Fatalf("party %d completed despite the codec skew: %s", me, r.out)
		}
		if me != skewed && !strings.Contains(string(r.out), "codec version") {
			t.Errorf("party %d diagnostic %q does not name the codec field", me, r.out)
		}
	}
}

// TestSurvivorsAbortWhenParticipantKilled lets one participant die
// right after joining the mesh: the three surviving OS processes must
// exit non-zero with the abort protocol's diagnostic naming the dead
// party — not hang, not print a rank or submissions. The victim
// endpoint lives in the test process so its death is deterministic.
func TestSurvivorsAbortWhenParticipantKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in short mode")
	}
	leakcheck.Check(t)
	bin := buildBinary(t)
	addrs, err := transport.FreeLoopbackAddrs(4)
	if err != nil {
		t.Fatal(err)
	}
	const victim = 2
	results := make([]partyResult, 4)
	cmds := make([]*exec.Cmd, 4)
	bufs := make([]*bytes.Buffer, 4)
	for me := 0; me < 4; me++ {
		if me == victim {
			continue
		}
		cmds[me], bufs[me] = startParty(bin, addrs, me, 10*time.Second)
		if err := cmds[me].Start(); err != nil {
			t.Fatal(err)
		}
	}
	// The victim joins the mesh, then dies without announcing a session
	// — exactly how a participant killed right after connecting appears
	// to its peers.
	core.RegisterWire()
	vic, err := transport.NewTCPFabric(addrs, victim, 10*time.Second)
	if err != nil {
		t.Fatalf("victim could not join the mesh: %v", err)
	}
	vic.Close()

	var wg sync.WaitGroup
	for me := 0; me < 4; me++ {
		if me == victim {
			continue
		}
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := cmds[me].Wait()
			results[me] = partyResult{out: bufs[me].Bytes(), err: err, code: cmds[me].ProcessState.ExitCode()}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		for _, c := range cmds {
			if c != nil && c.Process != nil {
				c.Process.Kill()
			}
		}
		t.Fatal("survivors hung after participant death")
	}
	for me, r := range results {
		if me == victim {
			continue
		}
		if r.code == 0 {
			t.Errorf("party %d exited zero after peer death: %s", me, r.out)
			continue
		}
		out := string(r.out)
		if !strings.Contains(out, "aborting") {
			t.Errorf("party %d gave no abort diagnostic: %q", me, out)
		}
		if strings.Contains(out, "ranks #") || strings.Contains(out, "submissions") {
			t.Errorf("party %d printed a result despite the abort: %q", me, out)
		}
		if !strings.Contains(out, fmt.Sprintf("party %d", victim)) {
			t.Errorf("party %d did not name the dead party %d: %q", me, victim, out)
		}
	}
}

// TestEquivocatorBlamedAcrossProcesses is the README's active-adversary
// demo as a test: party 1 runs with -fault-equivocate, so its own
// endpoint sends conflicting broadcast payloads to different peers. The
// honest processes must abort (never print a rank), name party 1, and
// the initiator's -blame-out certificate must survive offline
// verification while accusing party 1 — never an honest party.
func TestEquivocatorBlamedAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in short mode")
	}
	leakcheck.Check(t)
	bin := buildBinary(t)
	addrs, err := transport.FreeLoopbackAddrs(4)
	if err != nil {
		t.Fatal(err)
	}
	certFile := filepath.Join(t.TempDir(), "blame.json")
	results := make([]partyResult, 4)
	var wg sync.WaitGroup
	for me := 0; me < 4; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			var extra []string
			switch me {
			case 0:
				extra = []string{"-blame-out", certFile}
			case 1:
				extra = []string{"-fault-equivocate"}
			}
			cmd, buf := startParty(bin, addrs, me, 60*time.Second, extra...)
			err := cmd.Run()
			results[me] = partyResult{out: buf.Bytes(), err: err, code: cmd.ProcessState.ExitCode()}
		}()
	}
	wg.Wait()
	for me, r := range results {
		if me == 1 {
			continue // the cheater's own exit status is not part of the contract
		}
		if r.code == 0 {
			t.Fatalf("honest party %d completed under an equivocating peer: %s", me, r.out)
		}
		out := string(r.out)
		if strings.Contains(out, "ranks #") || strings.Contains(out, "submissions") {
			t.Fatalf("honest party %d printed a result under attack: %s", me, out)
		}
	}
	data, err := os.ReadFile(certFile)
	if err != nil {
		t.Fatalf("initiator wrote no blame certificate: %v\ninitiator output: %s", err, results[0].out)
	}
	cert, err := blame.VerifyJSON(data)
	if err != nil {
		t.Fatalf("blame certificate fails offline verification: %v\n%s", err, data)
	}
	if cert.Accused != 1 {
		t.Fatalf("certificate accuses party %d, the equivocator is 1 — FALSE ACCUSATION\n%s", cert.Accused, data)
	}
}

// scrapeCounter fetches /metrics from an admin endpoint and returns the
// value of one un-labelled counter, or -1 with the raw body when the
// endpoint is not serving yet or the counter is absent.
func scrapeCounter(addr, name string) (float64, string) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return -1, ""
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 {
		return -1, string(body)
	}
	for _, line := range strings.Split(string(body), "\n") {
		var v float64
		if n, err := fmt.Sscanf(line, name+" %g", &v); n == 1 && err == nil {
			return v, string(body)
		}
	}
	return -1, string(body)
}

// TestAdminEndpointsAndMergedTrace runs the full four-process mesh with
// every party serving -admin and writing -trace, and party 2 running
// with an injected -straggle delay. While the run is in flight the test
// scrapes the initiator's /metrics (counters must be live and
// monotonically increasing mid-run) and /healthz (200 with all links
// up). Afterwards the four per-party traces must merge into one
// timeline — proving all parties agreed on the session-pinned trace ID
// — and the analyzer must name the straggler.
func TestAdminEndpointsAndMergedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in short mode")
	}
	leakcheck.Check(t)
	bin := buildBinary(t)
	addrs, err := transport.FreeLoopbackAddrs(4)
	if err != nil {
		t.Fatal(err)
	}
	adminAddrs, err := transport.FreeLoopbackAddrs(4)
	if err != nil {
		t.Fatal(err)
	}
	const straggler = 2
	dir := t.TempDir()
	traceFiles := make([]string, 4)
	results := make([]partyResult, 4)
	var wg sync.WaitGroup
	for me := 0; me < 4; me++ {
		me := me
		traceFiles[me] = filepath.Join(dir, fmt.Sprintf("p%d.jsonl", me))
		wg.Add(1)
		go func() {
			defer wg.Done()
			extra := []string{"-admin", adminAddrs[me], "-trace", traceFiles[me]}
			if me == straggler {
				extra = append(extra, "-straggle", "300ms")
			}
			cmd, buf := startParty(bin, addrs, me, 60*time.Second, extra...)
			err := cmd.Run()
			results[me] = partyResult{out: buf.Bytes(), err: err, code: cmd.ProcessState.ExitCode()}
		}()
	}

	// Mid-run: the initiator's admin endpoint must serve live, growing
	// counters. The straggler's injected 300ms per phase keeps the run in
	// flight long enough to observe two distinct values.
	var first float64 = -1
	deadline := time.Now().Add(20 * time.Second)
	for first < 0 && time.Now().Before(deadline) {
		first, _ = scrapeCounter(adminAddrs[0], "transport_msgs_total")
		if first < 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if first < 0 {
		t.Fatal("initiator's /metrics never served transport_msgs_total mid-run")
	}
	if resp, err := http.Get("http://" + adminAddrs[0] + "/healthz"); err != nil {
		t.Errorf("mid-run /healthz: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("mid-run /healthz = %d, want 200 with the mesh up", resp.StatusCode)
		}
	}
	grew := false
	prev := first
	for !grew && time.Now().Before(deadline) {
		v, _ := scrapeCounter(adminAddrs[0], "transport_msgs_total")
		if v < 0 {
			break // the run finished and the endpoint went away
		}
		if v < prev {
			t.Fatalf("transport_msgs_total went backwards mid-run: %g then %g", prev, v)
		}
		grew = v > prev
		prev = v
		time.Sleep(15 * time.Millisecond)
	}
	if !grew {
		t.Errorf("transport_msgs_total never increased across mid-run scrapes (stuck at %g)", prev)
	}

	wg.Wait()
	for me, r := range results {
		if r.code != 0 {
			t.Fatalf("party %d exited %d: %s", me, r.code, r.out)
		}
	}

	// Post-run: the four traces merge (same trace ID on every party, per
	// the session handshake) and the analyzer blames the injected
	// straggler on compute, not wall time.
	traces, err := tracemerge.LoadFiles(traceFiles)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := tracemerge.Merge(traces)
	if err != nil {
		t.Fatalf("merging the four per-party traces: %v", err)
	}
	if want := core.DeriveTraceID("rankparty-test"); tl.TraceID != want {
		t.Errorf("merged trace ID = %q, want the seed-derived %q", tl.TraceID, want)
	}
	if tl.Straggler != straggler {
		var rendered bytes.Buffer
		tl.WriteText(&rendered)
		t.Errorf("analyzer names party %d as straggler, want the -straggle party %d\n%s",
			tl.Straggler, straggler, rendered.String())
	}
	for me := 0; me < 4; me++ {
		if !strings.Contains(string(results[me].out), "trace id "+tl.TraceID) {
			t.Errorf("party %d did not log the agreed trace id %s: %q", me, tl.TraceID, results[me].out)
		}
	}
}

// TestUsageErrors pins the CLI's argument validation exit code.
func TestUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in short mode")
	}
	bin := buildBinary(t)
	cases := [][]string{
		{},
		{"-addrs", "a,b", "-me", "0", "-attrs", "eq", "-values", "1"},
		{"-addrs", "a,b,c", "-me", "5", "-attrs", "eq", "-values", "1"},
		{"-addrs", "a,b,c", "-me", "0", "-attrs", "age:weird", "-values", "1"},
		{"-addrs", "a,b,c", "-me", "1", "-attrs", "eq", "-values", "1", "-weights", "2"},
		{"-addrs", "a,b,c", "-me", "0", "-attrs", "eq", "-values", "1", "-weights", "2", "-sorter", "bogus"},
		{"-addrs", "a,b,c", "-me", "0", "-attrs", "eq", "-values", "1", "-weights", "2", "-timeout", "-1s"},
		{"-addrs", "a,b,c", "-me", "0", "-attrs", "eq", "-values", "1", "-weights", "2", "-grace", "-1s"},
		{"-addrs", "a,b,c", "-me", "0", "-attrs", "eq", "-values", "1", "-weights", "2", "-heartbeat", "-5ms"},
	}
	for _, args := range cases {
		cmd := exec.Command(bin, args...)
		out, _ := cmd.CombinedOutput()
		if code := cmd.ProcessState.ExitCode(); code != 2 {
			t.Errorf("rankparty %v exited %d (want 2): %s", args, code, out)
		}
	}
}
