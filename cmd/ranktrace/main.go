// Command ranktrace merges the per-party JSONL traces of one
// distributed group-ranking run (rankparty -trace) into a single
// cross-party timeline. Every party writes its trace against its own
// clock; ranktrace aligns them on the session handshake (a barrier all
// parties leave together), checks they carry the same run-level trace
// ID, and reports the per-phase critical path, the straggler of each
// phase — the party the others were blocked waiting on, told apart by
// the wait-vs-compute split, not by wall time — and every party's
// busy/wait/compute totals.
//
//	ranktrace p0.jsonl p1.jsonl p2.jsonl p3.jsonl
//	ranktrace -json run.jsonl        # one merged file (shared clock)
//	rankparty ... -trace - 2>&1 | ranktrace -
//
// Exit status: 0 on success, 1 when the traces cannot be merged, 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"groupranking/internal/tracemerge"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("ranktrace: ")
	jsonOut := flag.Bool("json", false, "emit the merged timeline as JSON instead of tables")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ranktrace [-json] trace.jsonl [trace.jsonl ...]   (- reads stdin)")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		return 2
	}
	traces, err := tracemerge.LoadFiles(flag.Args())
	if err != nil {
		log.Print(err)
		return 1
	}
	tl, err := tracemerge.Merge(traces)
	if err != nil {
		log.Print(err)
		return 1
	}
	if *jsonOut {
		err = tl.WriteJSON(os.Stdout)
	} else {
		err = tl.WriteText(os.Stdout)
	}
	if err != nil {
		log.Print(err)
		return 1
	}
	return 0
}
