package groupranking_test

import (
	"context"
	"fmt"
	"log"

	"groupranking"
)

// ExampleRank runs the complete framework: the initiator's criterion is
// never revealed to participants, participants' profiles are never
// revealed to anyone unless they rank in the top k.
func ExampleRank() {
	q, err := groupranking.NewQuestionnaire([]groupranking.Attribute{
		{Name: "age", Kind: groupranking.EqualTo},
		{Name: "income", Kind: groupranking.GreaterThan},
	})
	if err != nil {
		log.Fatal(err)
	}
	criterion := groupranking.Criterion{Values: []int64{30, 0}, Weights: []int64{2, 1}}
	profiles := []groupranking.Profile{
		{Values: []int64{30, 50}},
		{Values: []int64{55, 20}},
		{Values: []int64{29, 40}},
	}
	res, err := groupranking.Rank(context.Background(), q, criterion, profiles, groupranking.Options{
		K: 1, D1: 7, D2: 3, H: 5,
		Seed:      "example-rank", // deterministic for the docs
		GroupName: "toy-dl-256",   // demo group; defaults to secp160r1
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ranks:", res.Ranks)
	fmt.Println("winner:", res.Submissions[0].Participant)
	// Output:
	// ranks: [1 3 2]
	// winner: 0
}

// ExampleRankParticipantParty shows one participant process of a
// distributed deployment: every party runs the same code with its own
// -me index (the initiator, index 0, calls RankInitiatorParty instead).
// It has no Output block because it needs the other three processes on
// the mesh to actually run.
func ExampleRankParticipantParty() {
	q, err := groupranking.NewQuestionnaire([]groupranking.Attribute{
		{Name: "age", Kind: groupranking.EqualTo},
		{Name: "income", Kind: groupranking.GreaterThan},
	})
	if err != nil {
		log.Fatal(err)
	}
	// The mesh every process agrees on: addrs[0] is the initiator,
	// addrs[me] is this process's own listen address.
	addrs := []string{"host0:9001", "host1:9001", "host2:9001", "host3:9001"}
	me := 2
	profile := groupranking.Profile{Values: []int64{29, 40}} // stays local
	// Options must be identical at every party — the pre-crypto session
	// handshake aborts the run (ErrSessionMismatch) if they disagree.
	res, err := groupranking.RankParticipantParty(context.Background(), q, addrs, me, profile, groupranking.Options{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("my rank:", res.Rank) // all this party learns
}

// ExampleUnlinkableSort ranks privately held values; each party would
// learn only its own entry of the result.
func ExampleUnlinkableSort() {
	res, err := groupranking.UnlinkableSort(context.Background(), []uint64{300, 100, 200}, groupranking.SortOptions{
		Seed:      "example-sort",
		GroupName: "toy-dl-256",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Ranks)
	// Output:
	// [1 3 2]
}
