package groupranking_test

import (
	"fmt"
	"log"

	"groupranking"
)

// ExampleRank runs the complete framework: the initiator's criterion is
// never revealed to participants, participants' profiles are never
// revealed to anyone unless they rank in the top k.
func ExampleRank() {
	q, err := groupranking.NewQuestionnaire([]groupranking.Attribute{
		{Name: "age", Kind: groupranking.EqualTo},
		{Name: "income", Kind: groupranking.GreaterThan},
	})
	if err != nil {
		log.Fatal(err)
	}
	criterion := groupranking.Criterion{Values: []int64{30, 0}, Weights: []int64{2, 1}}
	profiles := []groupranking.Profile{
		{Values: []int64{30, 50}},
		{Values: []int64{55, 20}},
		{Values: []int64{29, 40}},
	}
	res, err := groupranking.Rank(q, criterion, profiles, groupranking.Options{
		K: 1, D1: 7, D2: 3, H: 5,
		Seed:      "example-rank", // deterministic for the docs
		GroupName: "toy-dl-256",   // demo group; defaults to secp160r1
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ranks:", res.Ranks)
	fmt.Println("winner:", res.Submissions[0].Participant)
	// Output:
	// ranks: [1 3 2]
	// winner: 0
}

// ExampleUnlinkableSort ranks privately held values; each party would
// learn only its own entry of the result.
func ExampleUnlinkableSort() {
	ranks, err := groupranking.UnlinkableSort([]uint64{300, 100, 200}, groupranking.SortOptions{
		Seed:      "example-sort",
		GroupName: "toy-dl-256",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ranks)
	// Output:
	// [1 3 2]
}
