package groupranking

// One benchmark per evaluation artifact of the paper (Section VII and
// the Section VI-B table). These run the REAL protocol stack at laptop
// scale: small n and reduced bit widths so a full framework execution
// fits in a benchmark iteration. The paper-scale curves are produced by
// cmd/benchtab from the calibrated cost model; these benchmarks are the
// ground truth it is validated against (see EXPERIMENTS.md).
//
// Naming: BenchmarkFig2a_* vary n; Fig2b_* vary m; Fig2c_* vary d1;
// Fig2d_* vary h; Fig3a_* vary the security level; Fig3b_* replays a
// framework trace over the simulated network; TableVIB_* measure the
// primitive operations the complexity table counts.

import (
	"encoding/json"
	"fmt"
	"math/big"
	"os"
	"testing"

	"groupranking/internal/benchtab"
	"groupranking/internal/core"
	"groupranking/internal/costmodel"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/netsim"
	"groupranking/internal/ssmpc"
	"groupranking/internal/topk"
	"groupranking/internal/unlinksort"
	"groupranking/internal/workload"
)

// benchParams is the laptop-scale configuration: the real protocols at
// full width are hours at paper scale, which is exactly why the cost
// model exists.
func benchParams(b *testing.B, n int, g group.Group, sorter core.Sorter) core.Params {
	b.Helper()
	return core.Params{
		N: n, M: 4, T: 2, D1: 6, D2: 4, H: 6, K: 2,
		Group: g, Sorter: sorter,
	}
}

func benchInputs(b *testing.B, params core.Params, seed string) core.Inputs {
	b.Helper()
	q, err := workload.Uniform(params.M, params.T)
	if err != nil {
		b.Fatal(err)
	}
	rng := fixedbig.NewDRBG(seed)
	crit, err := workload.RandomCriterion(q, params.D1, params.D2, rng)
	if err != nil {
		b.Fatal(err)
	}
	profiles, err := workload.RandomProfiles(q, params.N, params.D1, rng)
	if err != nil {
		b.Fatal(err)
	}
	return core.Inputs{Questionnaire: q, Criterion: crit, Profiles: profiles}
}

func runFramework(b *testing.B, params core.Params, seed string) {
	b.Helper()
	in := benchInputs(b, params, seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Run(params, in, fmt.Sprintf("%s-%d", seed, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 2(a): full framework vs n, all three frameworks ---

func BenchmarkFig2a_ECC_n4(b *testing.B) {
	runFramework(b, benchParams(b, 4, group.Secp160r1(), core.SorterUnlinkable), "fig2a-ecc-4")
}

func BenchmarkFig2a_ECC_n6(b *testing.B) {
	runFramework(b, benchParams(b, 6, group.Secp160r1(), core.SorterUnlinkable), "fig2a-ecc-6")
}

func BenchmarkFig2a_ECC_n8(b *testing.B) {
	runFramework(b, benchParams(b, 8, group.Secp160r1(), core.SorterUnlinkable), "fig2a-ecc-8")
}

func BenchmarkFig2a_DL_n4(b *testing.B) {
	runFramework(b, benchParams(b, 4, group.MODP1024(), core.SorterUnlinkable), "fig2a-dl-4")
}

func BenchmarkFig2a_DL_n6(b *testing.B) {
	runFramework(b, benchParams(b, 6, group.MODP1024(), core.SorterUnlinkable), "fig2a-dl-6")
}

func BenchmarkFig2a_SS_n5(b *testing.B) {
	runFramework(b, benchParams(b, 5, group.Secp160r1(), core.SorterSecretSharing), "fig2a-ss-5")
}

func BenchmarkFig2a_SS_n7(b *testing.B) {
	runFramework(b, benchParams(b, 7, group.Secp160r1(), core.SorterSecretSharing), "fig2a-ss-7")
}

// --- Fig. 2(b): vs attribute dimension m ---

func BenchmarkFig2b_ECC_m2(b *testing.B) {
	p := benchParams(b, 4, group.Secp160r1(), core.SorterUnlinkable)
	p.M, p.T = 2, 1
	runFramework(b, p, "fig2b-m2")
}

func BenchmarkFig2b_ECC_m8(b *testing.B) {
	p := benchParams(b, 4, group.Secp160r1(), core.SorterUnlinkable)
	p.M, p.T = 8, 4
	runFramework(b, p, "fig2b-m8")
}

// --- Fig. 2(c): vs attribute bit length d1 ---

func BenchmarkFig2c_ECC_d1_4(b *testing.B) {
	p := benchParams(b, 4, group.Secp160r1(), core.SorterUnlinkable)
	p.D1 = 4
	runFramework(b, p, "fig2c-d4")
}

func BenchmarkFig2c_ECC_d1_10(b *testing.B) {
	p := benchParams(b, 4, group.Secp160r1(), core.SorterUnlinkable)
	p.D1 = 10
	runFramework(b, p, "fig2c-d10")
}

// --- Fig. 2(d): vs mask bit length h ---

func BenchmarkFig2d_ECC_h4(b *testing.B) {
	p := benchParams(b, 4, group.Secp160r1(), core.SorterUnlinkable)
	p.H = 4
	runFramework(b, p, "fig2d-h4")
}

func BenchmarkFig2d_ECC_h10(b *testing.B) {
	p := benchParams(b, 4, group.Secp160r1(), core.SorterUnlinkable)
	p.H = 10
	runFramework(b, p, "fig2d-h10")
}

// --- Fig. 3(a): unlinkable sort vs security level ---

func benchSortLevel(b *testing.B, g group.Group) {
	b.Helper()
	cfg := unlinksort.Config{Group: g, L: 12}
	betas := []*big.Int{big.NewInt(100), big.NewInt(7), big.NewInt(4000), big.NewInt(255)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := unlinksort.Run(cfg, betas, fmt.Sprintf("fig3a-%s-%d", g.Name(), i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3a_Level80_ECC(b *testing.B)  { benchSortLevel(b, group.Secp160r1()) }
func BenchmarkFig3a_Level80_DL(b *testing.B)   { benchSortLevel(b, group.MODP1024()) }
func BenchmarkFig3a_Level112_ECC(b *testing.B) { benchSortLevel(b, group.Secp224r1()) }
func BenchmarkFig3a_Level112_DL(b *testing.B)  { benchSortLevel(b, group.MODP2048()) }
func BenchmarkFig3a_Level128_ECC(b *testing.B) { benchSortLevel(b, group.Secp256r1()) }
func BenchmarkFig3a_Level128_DL(b *testing.B)  { benchSortLevel(b, group.MODP3072()) }

// --- Fig. 3(b): trace replay over the simulated network ---

func BenchmarkFig3b_NetworkReplay_n25(b *testing.B) {
	topo, err := netsim.NewRandomTopology(80, 320, fixedbig.NewDRBG("bench-topo"))
	if err != nil {
		b.Fatal(err)
	}
	s := costmodel.PaperDefaults()
	g := group.Secp160r1()
	assign, err := netsim.RandomAssignment(topo, s.N+1, fixedbig.NewDRBG("bench-assign"))
	if err != nil {
		b.Fatal(err)
	}
	rep, err := netsim.NewReplay(topo, netsim.PaperLink(), assign)
	if err != nil {
		b.Fatal(err)
	}
	trace := costmodel.OursTrace(s, 2*g.ElementLen(), g.ElementLen(), 21, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rep.Run(trace, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section VI-B table: the primitive operations it counts ---

func benchExp(b *testing.B, g group.Group) {
	b.Helper()
	k, err := g.RandomScalar(fixedbig.NewDRBG("bench-exp-" + g.Name()))
	if err != nil {
		b.Fatal(err)
	}
	base := g.Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base = g.Exp(base, k)
	}
}

func BenchmarkTableVIB_Exp_Secp160r1(b *testing.B) { benchExp(b, group.Secp160r1()) }
func BenchmarkTableVIB_Exp_MODP1024(b *testing.B)  { benchExp(b, group.MODP1024()) }
func BenchmarkTableVIB_Exp_Secp224r1(b *testing.B) { benchExp(b, group.Secp224r1()) }
func BenchmarkTableVIB_Exp_MODP2048(b *testing.B)  { benchExp(b, group.MODP2048()) }
func BenchmarkTableVIB_Exp_Secp256r1(b *testing.B) { benchExp(b, group.Secp256r1()) }
func BenchmarkTableVIB_Exp_MODP3072(b *testing.B)  { benchExp(b, group.MODP3072()) }

func BenchmarkTableVIB_SSFieldMul104(b *testing.B) {
	rng := fixedbig.NewDRBG("bench-fieldmul")
	p, err := fixedbig.Prime(rng, 104)
	if err != nil {
		b.Fatal(err)
	}
	x, err := fixedbig.RandInt(rng, p)
	if err != nil {
		b.Fatal(err)
	}
	y, err := fixedbig.RandInt(rng, p)
	if err != nil {
		b.Fatal(err)
	}
	acc := new(big.Int)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Mul(x, y)
		acc.Mod(acc, p)
		x.Set(acc)
	}
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out ---

// benchSortAblation runs the standalone sorting protocol with a given
// configuration tweak.
func benchSortAblation(b *testing.B, mutate func(*unlinksort.Config)) {
	b.Helper()
	g, err := group.GenerateDLGroup(256, fixedbig.NewDRBG("ablation-bench-group"))
	if err != nil {
		b.Fatal(err)
	}
	cfg := unlinksort.Config{Group: g, L: 12}
	mutate(&cfg)
	betas := []*big.Int{big.NewInt(100), big.NewInt(7), big.NewInt(4000), big.NewInt(255), big.NewInt(90)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := unlinksort.Run(cfg, betas, fmt.Sprintf("ablate-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Cost of the τ re-randomisation that defeats the linkage attack
// (TestMissingReRandomizationLeaksBits): compare On vs Off.
func BenchmarkAblation_ReRandomize_On(b *testing.B) {
	benchSortAblation(b, func(c *unlinksort.Config) {})
}

func BenchmarkAblation_ReRandomize_Off(b *testing.B) {
	benchSortAblation(b, func(c *unlinksort.Config) { c.UnsafeNoReRandomize = true })
}

// Cost of the n-verifier key-knowledge proofs.
func BenchmarkAblation_Proofs_On(b *testing.B) {
	benchSortAblation(b, func(c *unlinksort.Config) {})
}

func BenchmarkAblation_Proofs_Off(b *testing.B) {
	benchSortAblation(b, func(c *unlinksort.Config) { c.SkipProofs = true })
}

// Dedicated limb field vs generic math/big arithmetic for secp160r1 —
// the optimisation that restores the paper's ECC-beats-DL ordering.
func BenchmarkAblation_Secp160Fast(b *testing.B)    { benchExp(b, group.Secp160r1()) }
func BenchmarkAblation_Secp160Generic(b *testing.B) { benchExp(b, group.Secp160r1Generic()) }

// --- Machine-readable perf snapshot (BENCH_groupranking.json) ---

// TestBenchSnapshot regenerates the committed perf snapshot in memory
// and checks its invariants: the registry-measured exponentiation
// counts must equal the cost model's closed forms (the wall times vary
// by machine; the counts never do). Set BENCH_JSON=<path> to rewrite
// the committed file — `make bench-json` does this.
func TestBenchSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumented framework runs are slow in -short mode")
	}
	snap, err := benchtab.CollectSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != benchtab.SnapshotSchema {
		t.Fatalf("schema %d, want %d", snap.Schema, benchtab.SnapshotSchema)
	}
	if len(snap.Entries) < 3 {
		t.Fatalf("only %d entries", len(snap.Entries))
	}
	names := make(map[string]bool)
	for _, e := range snap.Entries {
		if names[e.Name] {
			t.Errorf("duplicate entry name %q", e.Name)
		}
		names[e.Name] = true
		if e.NsPerOp <= 0 || e.BytesOnWire <= 0 || e.MsgsOnWire <= 0 || e.Rounds <= 0 {
			t.Errorf("%s: non-positive measurement: %+v", e.Name, e)
		}
		if e.BytesPerOp != e.BytesOnWire/e.MsgsOnWire {
			t.Errorf("%s: bytes per op %d inconsistent with %d bytes over %d messages",
				e.Name, e.BytesPerOp, e.BytesOnWire, e.MsgsOnWire)
		}
		if e.ExpsPerParticipant != e.ExpsModel {
			t.Errorf("%s: measured %d exps per participant, model says %d",
				e.Name, e.ExpsPerParticipant, e.ExpsModel)
		}
		if e.Sorter == "secret-sharing" && e.ExpsPerParticipant != 0 {
			t.Errorf("%s: SS sorter performed %d group exps, want 0", e.Name, e.ExpsPerParticipant)
		}
	}
	if snap.Speedup == nil {
		t.Fatal("snapshot is missing the parallel-kernel speedup entry")
	}
	if !snap.Speedup.RanksEqual {
		t.Errorf("parallel run diverged from the serial reference: %+v", snap.Speedup)
	}
	if snap.Speedup.NsSerial <= 0 || snap.Speedup.NsParallel <= 0 || snap.Speedup.NumCPU < 1 {
		t.Errorf("speedup entry has non-positive measurements: %+v", snap.Speedup)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back benchtab.Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if path := os.Getenv("BENCH_JSON"); path != "" {
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
	// BENCH_COMPARE=<committed snapshot> turns this test into the drift
	// gate `make bench-compare` runs: wall times move with the machine,
	// but the operation and message counts are deterministic, so ANY
	// drift against the committed file means the protocol's cost
	// changed and the snapshot (plus the cost model) must be updated
	// deliberately.
	if path := os.Getenv("BENCH_COMPARE"); path != "" {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var committed benchtab.Snapshot
		if err := json.Unmarshal(raw, &committed); err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		if committed.Schema != snap.Schema {
			t.Fatalf("committed snapshot has schema %d, current is %d", committed.Schema, snap.Schema)
		}
		want := make(map[string]benchtab.SnapshotEntry, len(committed.Entries))
		for _, e := range committed.Entries {
			want[e.Name] = e
		}
		for _, e := range snap.Entries {
			c, ok := want[e.Name]
			if !ok {
				t.Errorf("entry %q missing from the committed snapshot %s", e.Name, path)
				continue
			}
			if e.ExpsPerParticipant != c.ExpsPerParticipant {
				t.Errorf("%s: exps per participant drifted: committed %d, now %d",
					e.Name, c.ExpsPerParticipant, e.ExpsPerParticipant)
			}
			if e.ExpsModel != c.ExpsModel {
				t.Errorf("%s: model exps drifted: committed %d, now %d", e.Name, c.ExpsModel, e.ExpsModel)
			}
			if e.MsgsOnWire != c.MsgsOnWire {
				t.Errorf("%s: messages on wire drifted: committed %d, now %d",
					e.Name, c.MsgsOnWire, e.MsgsOnWire)
			}
		}
	}
}

// --- Related-work baseline: probabilistic top-k (Burkhart et al.) ---

// BenchmarkRelated_TopK_n5 measures the paper's other cited baseline:
// finding the top-k by bucketised counting instead of full oblivious
// sorting. Compare with BenchmarkFig2a_SS_n5, which sorts all values.
func BenchmarkRelated_TopK_n5(b *testing.B) {
	p, err := fixedbig.Prime(fixedbig.NewDRBG("bench-topk-prime"), 96)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ssmpc.Config{N: 5, Degree: 2, P: p, Kappa: 40}
	vals := []int64{50, 10, 90, 30, 70}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := ssmpc.RunProgram(cfg, fmt.Sprintf("bench-topk-%d", i), nil,
			func(e *ssmpc.Engine) (*topk.Result, error) {
				return topk.Run(e, big.NewInt(vals[e.Party()]), 8, 2, 4)
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}
