package groupranking

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"math/big"
	"time"
)

// The option resolver shared by every entry point — Rank, the sorting
// layer and the distributed party runners — so GroupName/Seed/Bits
// defaults cannot drift between layers.

// defaultGroupName is the package-wide DDH group default.
const defaultGroupName = "secp160r1"

// defaultPartyTimeout bounds distributed runs (and each blocking
// receive on the TCP mesh) when the caller sets no Timeout: a dead peer
// must surface as a typed abort, never a hang.
const defaultPartyTimeout = 2 * time.Minute

// resolveGroupName applies the shared GroupName default.
func resolveGroupName(name string) string {
	if name == "" {
		return defaultGroupName
	}
	return name
}

// drawSeed returns seed unchanged when non-empty, otherwise a fresh
// random 128-bit hex seed.
func drawSeed(seed string) (string, error) {
	if seed != "" {
		return seed, nil
	}
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("groupranking: drawing seed: %w", err)
	}
	return hex.EncodeToString(raw[:]), nil
}

// deriveBits resolves a sorting bit width: the explicit setting when
// non-zero, otherwise the width of the largest value (at least 1).
func deriveBits(bits int, values []uint64) int {
	if bits != 0 {
		return bits
	}
	for _, v := range values {
		if b := new(big.Int).SetUint64(v).BitLen(); b > bits {
			bits = b
		}
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

func (o Options) withDefaults(n int) (Options, error) {
	if err := o.Runtime.validate(); err != nil {
		return o, err
	}
	o.GroupName = resolveGroupName(o.GroupName)
	if o.K == 0 {
		o.K = 3
	}
	if o.K > n {
		o.K = n
	}
	if o.D1 == 0 {
		o.D1 = 15
	}
	if o.D2 == 0 {
		o.D2 = 10
	}
	if o.H == 0 {
		o.H = 15
	}
	var err error
	o.Seed, err = drawSeed(o.Seed)
	return o, err
}

// validate checks the resolved sort options the same way Options is
// checked by core.Params.Validate: out-of-range settings fail with a
// descriptive error instead of propagating garbage into the protocol.
// The runtime knobs share Runtime.validate with the framework options.
func (o SortOptions) validate() error {
	if o.Bits < 1 || o.Bits > 64 {
		return fmt.Errorf("groupranking: bits=%d outside [1, 64]", o.Bits)
	}
	return o.Runtime.validate()
}

// withDefaults resolves GroupName/Bits/Seed for an in-process sort over
// the given values and validates the result.
func (o SortOptions) withDefaults(values []uint64) (SortOptions, error) {
	if len(values) < 2 {
		return o, fmt.Errorf("groupranking: need at least two values, got %d", len(values))
	}
	o.GroupName = resolveGroupName(o.GroupName)
	o.Bits = deriveBits(o.Bits, values)
	if err := o.validate(); err != nil {
		return o, err
	}
	var err error
	o.Seed, err = drawSeed(o.Seed)
	return o, err
}

// withPartyDefaults resolves the options for one distributed party:
// unlike the in-process form, no single process sees all values, so
// Bits is required rather than derived, the timeout gets the
// distributed default, and the seed is left empty (empty means real
// crypto/rand randomness for this party).
func (o SortOptions) withPartyDefaults() (SortOptions, error) {
	if o.Bits <= 0 {
		return o, fmt.Errorf("groupranking: distributed sorting requires an agreed Bits value")
	}
	o.GroupName = resolveGroupName(o.GroupName)
	if err := o.validate(); err != nil {
		return o, err
	}
	if o.Timeout <= 0 {
		o.Timeout = defaultPartyTimeout
	}
	return o, nil
}
